//! Causal execution spans recorded into per-lane lock-free ring buffers.
//!
//! A [`Tracer`] owns one fixed-capacity [`TraceRing`] per *lane* (lane 0 is
//! the environment/coordinator thread, lane `w + 1` is mutator worker `w`,
//! and GC shard scans render on synthetic lanes derived via
//! [`gc_shard_lane`]). Instrumented code holds a cloneable [`TraceLane`]
//! handle and opens RAII [`TraceScope`]s around phases of interest; the
//! scope records one [`SpanRecord`] — id, parent id, lane, begin/end
//! nanoseconds and up to [`MAX_SPAN_ARGS`] numeric key-value arguments —
//! into the lane's ring when it closes.
//!
//! The recording invariants mirror the telemetry layer's (DESIGN.md §8/§14):
//!
//! * **Disarmed cost is one relaxed load.** [`TraceLane::scope`] returns
//!   `None` after a single relaxed atomic read when the tracer is not
//!   armed; nothing else happens.
//! * **Zero allocation on the hot path.** Span names and argument keys are
//!   `&'static str`, argument values are `u64`, and rings are allocated
//!   up-front — recording a span writes one fixed-size slot.
//! * **Overwrite-oldest.** A full ring overwrites its oldest record; the
//!   memory bound is `capacity × lanes × size_of::<SpanRecord>()` and a
//!   long run keeps the most recent window per lane (the flight-recorder
//!   property).
//! * **Never touches the simulation.** Timestamps come from a wall-clock
//!   [`Instant`] epoch shared by parent and child tracers; no span ever
//!   charges the `SimClock`, so simulated results are bit-identical with
//!   tracing absent, armed, or exported.
//!
//! Each ring is single-writer by construction (a lane belongs to exactly
//! one thread at a time: workers own their lane for the duration of the
//! worker scope, and the parent adopts child records only after the worker
//! threads have been joined). A `writer` flag enforces this defensively —
//! a racing writer *drops* its record rather than corrupting the ring —
//! and each slot carries a sequence counter so readers discard records
//! that were mid-overwrite while being copied (the flight-recorder dump
//! path reads rings that may still be live).

use crate::chrome;
use crate::sync::{fence, AtomicBool, AtomicU32, AtomicU64, Ordering, UnsafeCell};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Maximum number of key-value arguments carried by one span.
pub const MAX_SPAN_ARGS: usize = 4;

/// Default per-lane ring capacity, in records.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Default number of most-recent spans per lane written by a flight dump.
pub const DEFAULT_FLIGHT_TAIL: usize = 256;

/// Synthetic-lane base for per-shard GC scan spans (see [`gc_shard_lane`]).
pub const GC_SHARD_LANE_BASE: u32 = 1_000_000;
/// Shard slots reserved per owning lane under [`GC_SHARD_LANE_BASE`].
pub const GC_SHARD_LANE_STRIDE: u32 = 256;

/// Display lane for GC scan shard `shard` of the heap owned by `owner`
/// (the mutator lane whose GC ran the sharded scan). Shards render on
/// their own timeline rows because they overlap in wall time; shards
/// beyond the stride share its last row.
pub fn gc_shard_lane(owner: u32, shard: usize) -> u32 {
    let shard = (shard as u32).min(GC_SHARD_LANE_STRIDE - 1);
    GC_SHARD_LANE_BASE + owner * GC_SHARD_LANE_STRIDE + shard
}

/// What a [`SpanRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A duration (`begin_ns..end_ns`); Chrome phase `"X"`.
    Complete,
    /// A point event (`end_ns == begin_ns`); Chrome phase `"i"`.
    Instant,
}

/// One recorded span: plain copyable data, no owned allocations.
#[derive(Debug, Clone, Copy)]
pub struct SpanRecord {
    /// Tracer-unique span id (never 0).
    pub id: u64,
    /// Enclosing span's id; 0 for a root span.
    pub parent: u64,
    /// Display lane (thread/worker/shard row in the timeline).
    pub lane: u32,
    /// Duration vs point event.
    pub kind: SpanKind,
    /// Begin, nanoseconds since the tracer epoch.
    pub begin_ns: u64,
    /// End, nanoseconds since the tracer epoch (== `begin_ns` for instants).
    pub end_ns: u64,
    /// Span name (static so recording never allocates).
    pub name: &'static str,
    /// Argument slots; only the first `nargs` are meaningful.
    pub args: [(&'static str, u64); MAX_SPAN_ARGS],
    /// Number of occupied argument slots.
    pub nargs: u8,
}

impl SpanRecord {
    fn empty() -> Self {
        SpanRecord {
            id: 0,
            parent: 0,
            lane: 0,
            kind: SpanKind::Instant,
            begin_ns: 0,
            end_ns: 0,
            name: "",
            args: [("", 0); MAX_SPAN_ARGS],
            nargs: 0,
        }
    }

    /// The occupied key-value argument slots.
    pub fn key_values(&self) -> &[(&'static str, u64)] {
        &self.args[..usize::from(self.nargs).min(MAX_SPAN_ARGS)]
    }

    /// Wall-clock duration in nanoseconds (0 for instants).
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.begin_ns)
    }
}

/// One ring slot: a sequence counter (odd while being written) plus the
/// record payload.
struct Slot {
    seq: AtomicU32,
    rec: UnsafeCell<SpanRecord>,
    /// Model-only redundant copies of the record's write generation
    /// (`seq / 2`), stored between the same fences that bracket `rec`.
    /// The record payload is non-atomic, so the model's weak-memory
    /// explorer cannot serve stale values of it — these atomic mirrors
    /// carry the observable staleness instead, and the reader asserts
    /// their consistency after accepting a snapshot. See `snapshot_into`.
    #[cfg(feature = "model")]
    mirror: [AtomicU64; 2],
}

/// Fixed-capacity overwrite-oldest span ring for one lane.
pub struct TraceRing {
    lane: u32,
    /// Records ever pushed; slot index is `head % capacity`.
    head: AtomicU64,
    /// Innermost open span id on this lane (0 = none); maintained by
    /// [`TraceScope`] begin/end so nested scopes link causally.
    current: AtomicU64,
    /// Defensive single-writer flag: a second concurrent writer drops its
    /// record instead of corrupting a slot.
    writer: AtomicBool,
    slots: Box<[Slot]>,
}

// SAFETY: `rec` slots are written only while holding the `writer` flag
// (one writer at a time) between odd/even `seq` transitions; readers copy
// a slot and discard the copy when `seq` changed around the read, so a
// torn snapshot is never *used*. See `push` / `snapshot_into`.
unsafe impl Send for TraceRing {}
unsafe impl Sync for TraceRing {}

impl TraceRing {
    fn new(lane: u32, capacity: usize) -> Self {
        let slots = (0..capacity.max(1))
            .map(|_| Slot {
                seq: AtomicU32::new(0),
                rec: UnsafeCell::new(SpanRecord::empty()),
                #[cfg(feature = "model")]
                mirror: [AtomicU64::new(0), AtomicU64::new(0)],
            })
            .collect();
        TraceRing {
            lane,
            head: AtomicU64::new(0),
            current: AtomicU64::new(0),
            writer: AtomicBool::new(false),
            slots,
        }
    }

    /// Lane this ring records for.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Records ever pushed (≥ the number currently held).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    fn push(&self, rec: SpanRecord) {
        if self.writer.swap(true, Ordering::Acquire) {
            // A second writer raced onto this lane (contract violation);
            // drop the record rather than tear a slot.
            return;
        }
        let h = self.head.load(Ordering::Relaxed); // relaxed: only this writer moves head
        let slot = &self.slots[(h % self.slots.len() as u64) as usize];
        let seq = slot.seq.load(Ordering::Relaxed); // relaxed: only this writer moves seq
                                                    // relaxed: odd marks in-progress; the Release fence below orders it.
        slot.seq.store(seq.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        // SAFETY: the `writer` flag admits exactly one writer, and readers
        // validate `seq` around their copy, discarding torn records.
        slot.rec.with_mut(|p| unsafe { *p = rec });
        #[cfg(feature = "model")]
        {
            // relaxed: generation mirrors are ordered by the bracketing
            // fences, exactly like the payload they stand in for.
            let gen = u64::from(seq.wrapping_add(2) >> 1);
            slot.mirror[0].store(gen, Ordering::Relaxed); // relaxed: fenced, as above
            slot.mirror[1].store(gen, Ordering::Relaxed); // relaxed: fenced, as above
        }
        fence(Ordering::Release);
        // relaxed: even marks stable; the Release fence above orders it.
        slot.seq.store(seq.wrapping_add(2), Ordering::Relaxed);
        self.head.store(h + 1, Ordering::Release);
        self.writer.store(false, Ordering::Release);
    }

    /// Copies up to the newest `tail` stable records (oldest first) into
    /// `out`. Safe against a concurrent writer: records whose slot was
    /// overwritten mid-copy are skipped, so this is exact once the lane's
    /// writer has quiesced and best-effort (never corrupt) otherwise.
    fn snapshot_into(&self, tail: usize, out: &mut Vec<SpanRecord>) {
        let cap = self.slots.len() as u64;
        let head = self.head.load(Ordering::Acquire);
        // The slot `head` maps to may be mid-overwrite; staying one short
        // of full capacity keeps the window clear of the write frontier.
        let window = (cap - 1).min(tail as u64).min(head);
        for h in (head - window)..head {
            let slot = &self.slots[(h % cap) as usize];
            let s0 = slot.seq.load(Ordering::Acquire);
            if s0 & 1 == 1 {
                continue; // being written right now
            }
            // SAFETY: copy is discarded below unless `seq` stayed stable
            // across it (no writer touched this slot during the read).
            let rec = slot
                .rec
                .with_racy(|p| unsafe { std::ptr::read_volatile(p) });
            // relaxed: the acquire fence below orders these reads before
            // the seq recheck (the seqlock validation edge).
            #[cfg(feature = "model")]
            let mirror = (
                slot.mirror[0].load(Ordering::Relaxed), // relaxed: fenced, as above
                slot.mirror[1].load(Ordering::Relaxed), // relaxed: fenced, as above
            );
            fence(Ordering::Acquire);
            // relaxed: the Acquire fence above gives this recheck its edge.
            if slot.seq.load(Ordering::Relaxed) != s0 || rec.name.is_empty() {
                continue;
            }
            // Model invariant: an accepted snapshot is untorn and belongs
            // to exactly the generation the seq word advertised. Both
            // asserts depend on the fences above — remove either release
            // fence in `push` (or the acquire fence here) and the explorer
            // finds a schedule where a stale mirror slips through.
            #[cfg(feature = "model")]
            if loom::is_modeling() {
                assert_eq!(
                    mirror.0, mirror.1,
                    "seqlock accepted a torn record (mirror words disagree)"
                );
                assert_eq!(
                    mirror.0,
                    u64::from(s0 >> 1),
                    "seqlock accepted a stale record (generation != seq/2)"
                );
            }
            out.push(rec);
        }
    }
}

struct TracerInner {
    armed: AtomicBool,
    capacity: usize,
    default_lane: u32,
    /// Next span id (starts at 1; 0 means "no span").
    next_id: AtomicU64,
    /// Wall-clock origin of every timestamp; shared with child tracers so
    /// adopted records need no rebasing.
    epoch: Instant,
    lanes: Mutex<Vec<Arc<TraceRing>>>,
    /// Flight-recorder dump directory; `None` disables dumping.
    flight_dir: Mutex<Option<PathBuf>>,
    flight_tail: usize,
}

/// Shared handle to a set of per-lane span rings.
///
/// Cloning shares the rings (like [`crate::Telemetry`]); a *child* tracer
/// created with [`Tracer::child`] has its own rings and id space but the
/// same epoch, and its records are folded back with [`Tracer::adopt`].
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("armed", &self.is_armed())
            .field("capacity", &self.inner.capacity)
            .field("lanes", &self.inner.lanes.lock().unwrap().len())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// An armed tracer with the default per-lane capacity.
    pub fn new() -> Self {
        Tracer::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An armed tracer holding up to `capacity` records per lane.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer::build(capacity, true, 0, Instant::now())
    }

    /// A disarmed tracer: every [`TraceLane::scope`] call returns `None`
    /// after one relaxed load. Useful for overhead comparisons; arm it
    /// later with [`Tracer::set_armed`].
    pub fn disarmed() -> Self {
        Tracer::build(DEFAULT_RING_CAPACITY, false, 0, Instant::now())
    }

    fn build(capacity: usize, armed: bool, default_lane: u32, epoch: Instant) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                armed: AtomicBool::new(armed),
                capacity: capacity.max(2),
                default_lane,
                next_id: AtomicU64::new(1),
                epoch,
                lanes: Mutex::new(Vec::new()),
                flight_dir: Mutex::new(None),
                flight_tail: DEFAULT_FLIGHT_TAIL,
            }),
        }
    }

    /// Whether spans are being recorded (one relaxed load).
    #[inline]
    pub fn is_armed(&self) -> bool {
        // relaxed: advisory flag; a stale read delays arming by one event.
        self.inner.armed.load(Ordering::Relaxed)
    }

    /// Arms or disarms recording.
    pub fn set_armed(&self, armed: bool) {
        // relaxed: advisory flag; a stale read delays arming by one event.
        self.inner.armed.store(armed, Ordering::Relaxed);
    }

    /// The lane handles of this tracer default to (0 for a root tracer,
    /// the worker lane for a child).
    pub fn default_lane(&self) -> u32 {
        self.inner.default_lane
    }

    /// Nanoseconds since this tracer's epoch (shared with children).
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// Allocates a fresh span id (for low-level [`TraceLane::record`] use).
    pub fn alloc_id(&self) -> u64 {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Handle for `lane`, creating its ring on first use. The hot path
    /// never comes back here: a [`TraceLane`] caches the ring `Arc`.
    pub fn lane(&self, lane: u32) -> TraceLane {
        let mut lanes = self.inner.lanes.lock().unwrap();
        let ring = match lanes.iter().find(|r| r.lane == lane) {
            Some(r) => Arc::clone(r),
            None => {
                let r = Arc::new(TraceRing::new(lane, self.inner.capacity));
                lanes.push(Arc::clone(&r));
                r
            }
        };
        TraceLane {
            tracer: self.clone(),
            ring,
        }
    }

    /// A hermetic child tracer for worker `lane`: fresh rings and id
    /// space, same epoch and capacity, armed iff this tracer is armed.
    /// Fold its records back with [`Tracer::adopt`].
    pub fn child(&self, lane: u32) -> Tracer {
        Tracer::build(self.inner.capacity, self.is_armed(), lane, self.inner.epoch)
    }

    /// All stable records across every lane, oldest-first per lane, lanes
    /// in ascending order. Exact once writers have quiesced.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.collect_tail(usize::MAX)
    }

    fn collect_tail(&self, tail: usize) -> Vec<SpanRecord> {
        let mut rings: Vec<Arc<TraceRing>> = self.inner.lanes.lock().unwrap().clone();
        rings.sort_by_key(|r| r.lane);
        let mut out = Vec::new();
        for ring in rings {
            ring.snapshot_into(tail, &mut out);
        }
        out
    }

    /// Adopts a finished child's records (from [`Tracer::records`] on the
    /// child) into the ring for `into_lane`: span ids are remapped into
    /// this tracer's id space and the child's *root* spans are re-parented
    /// under `reparent` (0 keeps them roots). Call in partition-index
    /// order for a deterministic timeline; records keep their own `lane`
    /// field for display.
    pub fn adopt(&self, records: &[SpanRecord], reparent: u64, into_lane: u32) {
        if records.is_empty() {
            return;
        }
        let max_id = records.iter().map(|r| r.id).max().unwrap_or(0);
        let base = self.inner.next_id.fetch_add(max_id, Ordering::Relaxed);
        let lane = self.lane(into_lane);
        for r in records {
            let mut rec = *r;
            rec.id = rec.id + base - 1;
            rec.parent = if rec.parent == 0 {
                reparent
            } else {
                rec.parent + base - 1
            };
            lane.ring.push(rec);
        }
    }

    /// Directs flight-recorder dumps (panic hook, GC anomaly trigger) to
    /// `dir`; without a directory, [`Tracer::flight_dump`] is a no-op.
    pub fn set_flight_dir(&self, dir: impl AsRef<Path>) {
        *self.inner.flight_dir.lock().unwrap() = Some(dir.as_ref().to_path_buf());
    }

    /// Dumps the last [`DEFAULT_FLIGHT_TAIL`] spans of every lane to a
    /// timestamped Chrome-trace file in the configured flight directory.
    /// Returns the file path, or `None` when disarmed, unconfigured, or
    /// the write failed (a flight dump must never panic — it runs inside
    /// panic hooks).
    pub fn flight_dump(&self, reason: &str) -> Option<PathBuf> {
        if !self.is_armed() {
            return None;
        }
        let dir = self.inner.flight_dir.lock().ok()?.clone()?;
        let records = self.collect_tail(self.inner.flight_tail);
        let stamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis());
        // Keep the reason filename-safe.
        let reason: String = reason
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' {
                    c
                } else {
                    '-'
                }
            })
            .collect();
        let path = dir.join(format!("flight-{reason}-{stamp}.json"));
        std::fs::create_dir_all(&dir).ok()?;
        std::fs::write(&path, chrome::render(&records)).ok()?;
        Some(path)
    }

    /// Installs a process-wide panic hook that flight-dumps this tracer's
    /// rings (reason `"panic"`) before delegating to the previous hook.
    /// The dump itself never panics; without a flight directory the hook
    /// only delegates.
    pub fn install_panic_hook(&self) {
        let tracer = self.clone();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = tracer.flight_dump("panic");
            prev(info);
        }));
    }
}

/// Cheap cloneable recording handle bound to one lane's ring.
#[derive(Clone)]
pub struct TraceLane {
    tracer: Tracer,
    ring: Arc<TraceRing>,
}

impl fmt::Debug for TraceLane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceLane")
            .field("lane", &self.ring.lane)
            .field("armed", &self.armed())
            .finish()
    }
}

impl TraceLane {
    /// Whether spans are being recorded (one relaxed load).
    #[inline]
    pub fn armed(&self) -> bool {
        self.tracer.is_armed()
    }

    /// This handle's lane id.
    pub fn lane(&self) -> u32 {
        self.ring.lane
    }

    /// The owning tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Nanoseconds since the tracer epoch.
    pub fn now_ns(&self) -> u64 {
        self.tracer.now_ns()
    }

    /// Opens a span; `None` (after one relaxed load) when disarmed. The
    /// span closes — and its record is written — when the returned scope
    /// drops. Nested scopes on the same lane link parent→child.
    pub fn scope(&self, name: &'static str) -> Option<TraceScope> {
        if !self.armed() {
            return None;
        }
        let id = self.tracer.alloc_id();
        // relaxed: `current` is lane-local (single mutator per lane).
        let parent = self.ring.current.swap(id, Ordering::Relaxed);
        Some(TraceScope {
            lane: self.clone(),
            id,
            parent,
            begin_ns: self.now_ns(),
            name,
            args: [("", 0); MAX_SPAN_ARGS],
            nargs: 0,
        })
    }

    /// Records a point event under the currently open span.
    pub fn instant(&self, name: &'static str, args: &[(&'static str, u64)]) {
        if !self.armed() {
            return;
        }
        let now = self.now_ns();
        let mut rec = SpanRecord {
            id: self.tracer.alloc_id(),
            // relaxed: `current` is lane-local (single mutator per lane).
            parent: self.ring.current.load(Ordering::Relaxed),
            lane: self.ring.lane,
            kind: SpanKind::Instant,
            begin_ns: now,
            end_ns: now,
            name,
            args: [("", 0); MAX_SPAN_ARGS],
            nargs: 0,
        };
        for &(k, v) in args.iter().take(MAX_SPAN_ARGS) {
            rec.args[usize::from(rec.nargs)] = (k, v);
            rec.nargs += 1;
        }
        self.ring.push(rec);
    }

    /// Pushes a fully-formed record (post-hoc spans such as per-shard GC
    /// scans, whose times were measured elsewhere). The record lands in
    /// *this* lane's ring but keeps its own `lane` field for display.
    pub fn record(&self, rec: SpanRecord) {
        if !self.armed() {
            return;
        }
        self.ring.push(rec);
    }
}

/// RAII span: records one [`SpanKind::Complete`] record when dropped.
pub struct TraceScope {
    lane: TraceLane,
    id: u64,
    parent: u64,
    begin_ns: u64,
    name: &'static str,
    args: [(&'static str, u64); MAX_SPAN_ARGS],
    nargs: u8,
}

impl TraceScope {
    /// Attaches a numeric argument (ignored beyond [`MAX_SPAN_ARGS`]).
    pub fn arg(mut self, key: &'static str, value: u64) -> Self {
        if usize::from(self.nargs) < MAX_SPAN_ARGS {
            self.args[usize::from(self.nargs)] = (key, value);
            self.nargs += 1;
        }
        self
    }

    /// This span's id (e.g. to parent post-hoc records under it).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        let end_ns = self.lane.now_ns();
        // relaxed: `current` is lane-local (single mutator per lane).
        self.lane.ring.current.store(self.parent, Ordering::Relaxed);
        self.lane.ring.push(SpanRecord {
            id: self.id,
            parent: self.parent,
            lane: self.lane.ring.lane,
            kind: SpanKind::Complete,
            begin_ns: self.begin_ns,
            end_ns,
            name: self.name,
            args: self.args,
            nargs: self.nargs,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_scope_is_none_and_records_nothing() {
        let t = Tracer::disarmed();
        let lane = t.lane(0);
        assert!(lane.scope("x").is_none());
        lane.instant("i", &[("k", 1)]);
        assert!(t.records().is_empty());
        t.set_armed(true);
        drop(lane.scope("x"));
        assert_eq!(t.records().len(), 1);
    }

    #[test]
    fn nested_scopes_link_parent_to_child() {
        let t = Tracer::new();
        let lane = t.lane(0);
        let outer = lane.scope("outer").unwrap();
        let outer_id = outer.id();
        {
            let inner = lane.scope("inner").unwrap().arg("k", 7);
            assert_eq!(inner.id(), outer_id + 1);
        }
        lane.instant("tick", &[]);
        drop(outer);
        let recs = t.records();
        assert_eq!(recs.len(), 3);
        let inner = recs.iter().find(|r| r.name == "inner").unwrap();
        let tick = recs.iter().find(|r| r.name == "tick").unwrap();
        let outer = recs.iter().find(|r| r.name == "outer").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(tick.parent, outer.id);
        assert_eq!(tick.kind, SpanKind::Instant);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.key_values(), &[("k", 7)]);
        assert!(inner.begin_ns >= outer.begin_ns && inner.end_ns <= outer.end_ns);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let t = Tracer::with_capacity(8);
        let lane = t.lane(3);
        for i in 0..20u64 {
            lane.instant("e", &[("i", i)]);
        }
        let recs = t.records();
        // Capacity 8, one slot kept clear of the write frontier.
        assert_eq!(recs.len(), 7);
        let is: Vec<u64> = recs.iter().map(|r| r.key_values()[0].1).collect();
        assert_eq!(is, (13..20).collect::<Vec<_>>(), "newest window survives");
        assert!(recs.iter().all(|r| r.lane == 3));
    }

    fn rec(id: u64, name: &'static str) -> SpanRecord {
        SpanRecord {
            id,
            parent: 0,
            lane: 0,
            kind: SpanKind::Instant,
            begin_ns: 0,
            end_ns: 0,
            name,
            args: [("", 0); MAX_SPAN_ARGS],
            nargs: 0,
        }
    }

    #[test]
    fn capacity_one_ring_counts_pushes_but_snapshots_nothing() {
        // Degenerate edge: with one slot the reader window (capacity − 1)
        // is empty, because the only slot is always the write frontier.
        // Pushes must still be counted and must never wedge the ring.
        let ring = TraceRing::new(0, 1);
        for i in 0..5 {
            ring.push(rec(i + 1, "e"));
        }
        assert_eq!(ring.pushed(), 5);
        let mut out = Vec::new();
        ring.snapshot_into(usize::MAX, &mut out);
        assert!(out.is_empty(), "window must stay clear of the frontier");
        // The public constructor refuses the degenerate ring: capacity is
        // clamped to 2, so a "capacity-1" tracer still keeps one record.
        let t = Tracer::with_capacity(1);
        let lane = t.lane(0);
        lane.instant("i", &[]);
        lane.instant("j", &[]);
        let recs = t.records();
        assert_eq!(recs.len(), 1, "clamped ring keeps a one-record window");
        assert_eq!(recs[0].name, "j");
    }

    #[test]
    fn seq_rollover_keeps_accepting_records() {
        // The per-slot seq word is u32 and gains 2 per overwrite; force it
        // to the wrap boundary and check the odd/even protocol survives
        // `u32::MAX − 1 → u32::MAX (odd, in progress) → 0 (even, stable)`.
        let ring = TraceRing::new(0, 2);
        for slot in ring.slots.iter() {
            slot.seq.store(u32::MAX - 1, Ordering::Release);
        }
        ring.push(rec(1, "wrap"));
        assert_eq!(ring.slots[0].seq.load(Ordering::Acquire), 0, "seq wrapped");
        let mut out = Vec::new();
        ring.snapshot_into(usize::MAX, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].name, "wrap");
        // The next overwrite of the same slot restarts the even ladder.
        ring.push(rec(2, "a"));
        ring.push(rec(3, "b"));
        assert_eq!(ring.slots[0].seq.load(Ordering::Acquire), 2);
    }

    #[test]
    fn reader_skips_slot_held_mid_write() {
        // A slot whose seq is odd is mid-write; the reader must skip it
        // (not block, not surface a half-written record) and still return
        // the stable neighbours.
        let ring = TraceRing::new(0, 4);
        ring.push(rec(1, "a"));
        ring.push(rec(2, "b"));
        ring.push(rec(3, "c"));
        let held = &ring.slots[1];
        let seq = held.seq.load(Ordering::Acquire);
        held.seq.store(seq.wrapping_add(1), Ordering::Release); // odd: writer parked
        let mut out = Vec::new();
        ring.snapshot_into(usize::MAX, &mut out);
        let names: Vec<_> = out.iter().map(|r| r.name).collect();
        assert_eq!(names, ["a", "c"], "mid-write slot must be skipped");
        held.seq.store(seq.wrapping_add(2), Ordering::Release); // even again
        out.clear();
        ring.snapshot_into(usize::MAX, &mut out);
        assert_eq!(out.len(), 3, "slot returns once the write completes");
    }

    #[test]
    fn child_adoption_remaps_ids_and_reparents_roots() {
        let t = Tracer::new();
        let lane0 = t.lane(0);
        let parent_span = lane0.scope("partition").unwrap();
        let parent_id = parent_span.id();

        let child = t.child(2);
        let clane = child.lane(2);
        {
            let outer = clane.scope("c_outer").unwrap();
            drop(clane.scope("c_inner"));
            drop(outer);
        }
        let child_recs = child.records();
        t.adopt(&child_recs, parent_id, 2);
        drop(parent_span);

        let recs = t.records();
        let outer = recs.iter().find(|r| r.name == "c_outer").unwrap();
        let inner = recs.iter().find(|r| r.name == "c_inner").unwrap();
        assert_eq!(outer.parent, parent_id, "child roots hang off the span");
        assert_eq!(inner.parent, outer.id, "internal links survive the remap");
        assert_ne!(outer.id, parent_id);
        // Ids are unique across the merged timeline.
        let mut ids: Vec<u64> = recs.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), recs.len());
    }

    #[test]
    fn flight_dump_writes_timestamped_chrome_json() {
        let t = Tracer::new();
        drop(t.lane(0).scope("s").map(|s| s.arg("n", 1)));
        assert!(t.flight_dump("test").is_none(), "no dir configured yet");
        let dir = std::env::temp_dir().join(format!("chameleon-flight-{}", std::process::id()));
        t.set_flight_dir(&dir);
        let path = t.flight_dump("unit test!").expect("dump written");
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("flight-unit-test-"));
        let body = std::fs::read_to_string(&path).unwrap();
        let v = crate::json::parse(&body).expect("valid JSON");
        assert!(!v.get("traceEvents").unwrap().as_arr().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_shard_lanes_are_disjoint_per_owner() {
        assert_ne!(gc_shard_lane(0, 0), gc_shard_lane(1, 0));
        assert_ne!(gc_shard_lane(0, 0), gc_shard_lane(0, 1));
        assert_eq!(gc_shard_lane(2, 5000), gc_shard_lane(2, 9000), "clamped");
        assert!(gc_shard_lane(0, 0) >= GC_SHARD_LANE_BASE);
    }
}
