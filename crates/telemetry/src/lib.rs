//! # chameleon-telemetry
//!
//! Dependency-free observability layer for the Chameleon reproduction:
//!
//! * [`metrics`] — an atomic metrics registry (counters, gauges,
//!   fixed-bucket histograms) that instrumented components pre-resolve into
//!   cheap cloneable handles, so the hot path pays one relaxed atomic add;
//! * [`Telemetry`] — the shared handle bundling the registry, a global
//!   enabled flag (one relaxed load on every instrumented fast path) and a
//!   structured JSONL event sink;
//! * [`json`] — a hand-rolled JSON writer (escaping) and a minimal parser
//!   used to validate emitted event logs and to reconstruct decision audits
//!   in tests, keeping the workspace free of external dependencies.
//!
//! The contract instrumented crates follow (documented in DESIGN.md §8):
//! with no `Telemetry` attached — or one attached but disabled — the
//! instrumented hot paths (allocation, context capture, GC) perform **zero
//! extra allocations**; everything beyond the enabled-check happens only
//! when telemetry is on.
//!
//! # Examples
//!
//! ```
//! use chameleon_telemetry::Telemetry;
//!
//! let t = Telemetry::new();
//! let gcs = t.counter("gc.cycles");
//! gcs.inc();
//! if let Some(mut e) = t.event("gc_cycle", 1234) {
//!     e.num("cycle", 1);
//!     e.str("heap", "main");
//! }
//! assert_eq!(t.event_count(), 1);
//! let log = t.events_snapshot();
//! assert!(log.contains("\"ev\":\"gc_cycle\""));
//! chameleon_telemetry::json::validate_jsonl(&log, &["ev", "t"]).unwrap();
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod series;
pub mod sync;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, MetricKind, MetricSnapshot};
pub use series::{DriftConfig, DriftFinding, SeriesSample, SeriesStore};
pub use trace::{SpanKind, SpanRecord, TraceLane, TraceScope, Tracer};

use metrics::Registry;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Default histogram bucket bounds for byte-sized quantities (powers of
/// four from 64 B to 16 MiB).
pub const BYTE_BUCKETS: [u64; 10] = [
    64,
    256,
    1024,
    4096,
    16 << 10,
    64 << 10,
    256 << 10,
    1 << 20,
    4 << 20,
    16 << 20,
];

/// Default histogram bucket bounds for simulated cost units.
pub const UNIT_BUCKETS: [u64; 10] = [
    1_000,
    10_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    5_000_000,
    25_000_000,
    100_000_000,
];

struct Inner {
    enabled: AtomicBool,
    registry: Registry,
    events: Mutex<EventSink>,
    event_count: AtomicU64,
}

#[derive(Default)]
struct EventSink {
    buf: String,
}

/// Shared telemetry handle: registry + enabled flag + JSONL event sink.
///
/// Cloning is a reference-count bump; all clones observe the same state.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .field("events", &self.event_count())
            .finish()
    }
}

impl Telemetry {
    /// Creates an enabled telemetry handle.
    pub fn new() -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(true),
                registry: Registry::new(),
                events: Mutex::new(EventSink::default()),
                event_count: AtomicU64::new(0),
            }),
        }
    }

    /// Creates a handle that starts disabled (attachable everywhere at zero
    /// cost beyond the enabled-check; flip on with [`Telemetry::set_enabled`]).
    pub fn disabled() -> Self {
        let t = Telemetry::new();
        t.set_enabled(false);
        t
    }

    /// Switches event and metric recording on or off.
    pub fn set_enabled(&self, enabled: bool) {
        // relaxed: advisory flag; a stale read delays the toggle by one event.
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The cheap enabled-check every instrumented fast path performs first.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        // relaxed: advisory flag; a stale read delays the toggle by one event.
        self.inner.enabled.load(Ordering::Relaxed)
    }

    // ----- metrics --------------------------------------------------------------

    /// Resolves (registering on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner.registry.counter(name)
    }

    /// Resolves (registering on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner.registry.gauge(name)
    }

    /// Resolves (registering on first use) the histogram `name` with
    /// `bounds` (ascending upper bucket bounds; an overflow bucket is added).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.inner.registry.histogram(name, bounds)
    }

    /// Snapshots every registered metric, sorted by name.
    pub fn metrics_snapshot(&self) -> Vec<MetricSnapshot> {
        self.inner.registry.snapshot()
    }

    // ----- events ---------------------------------------------------------------

    /// Starts a structured event of `kind` at simulated time `t` (cost
    /// units; 0 when no clock governs the emitting component). Returns
    /// `None` when disabled — instrumented sites do all field formatting
    /// inside the `if let`, keeping the disabled path free.
    pub fn event(&self, kind: &str, t: u64) -> Option<Event<'_>> {
        if !self.is_enabled() {
            return None;
        }
        let guard = self.inner.events.lock().unwrap_or_else(|e| e.into_inner());
        self.inner.event_count.fetch_add(1, Ordering::Relaxed);
        Some(Event::begin(guard, kind, t))
    }

    /// Number of events recorded so far.
    pub fn event_count(&self) -> u64 {
        self.inner.event_count.load(Ordering::Relaxed)
    }

    /// Clones the JSONL event log recorded so far.
    pub fn events_snapshot(&self) -> String {
        self.inner
            .events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .buf
            .clone()
    }

    /// Takes the JSONL event log, leaving the sink empty (the event counter
    /// keeps running).
    pub fn drain_events(&self) -> String {
        std::mem::take(
            &mut self
                .inner
                .events
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .buf,
        )
    }

    /// Renders every registered metric as one `{"ev":"metric",...}` JSONL
    /// line, for appending to an event log at dump time.
    pub fn metrics_jsonl(&self) -> String {
        let mut out = String::new();
        for m in self.metrics_snapshot() {
            m.write_jsonl(&mut out);
        }
        out
    }

    /// The full dump an exporter writes to disk: all events followed by the
    /// metric snapshot lines.
    pub fn dump_jsonl(&self) -> String {
        let mut out = self.events_snapshot();
        out.push_str(&self.metrics_jsonl());
        out
    }
}

/// Builder for one JSONL event line; the opening `{"ev":...,"t":...}` is
/// written on creation, fields append, and the closing brace + newline land
/// on drop. Holds the sink lock for its (short) lifetime.
pub struct Event<'a> {
    guard: MutexGuard<'a, EventSink>,
}

impl<'a> Event<'a> {
    fn begin(mut guard: MutexGuard<'a, EventSink>, kind: &str, t: u64) -> Self {
        guard.buf.push_str("{\"ev\":");
        json::write_str(&mut guard.buf, kind);
        guard.buf.push_str(",\"t\":");
        push_u64(&mut guard.buf, t);
        Event { guard }
    }

    fn key(&mut self, key: &str) {
        self.guard.buf.push(',');
        json::write_str(&mut self.guard.buf, key);
        self.guard.buf.push(':');
    }

    /// Appends an unsigned integer field.
    pub fn num(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        push_u64(&mut self.guard.buf, value);
        self
    }

    /// Appends a signed integer field.
    pub fn inum(&mut self, key: &str, value: i64) -> &mut Self {
        self.key(key);
        let buf = &mut self.guard.buf;
        if value < 0 {
            buf.push('-');
            push_u64(buf, value.unsigned_abs());
        } else {
            push_u64(buf, value as u64);
        }
        self
    }

    /// Appends a float field (JSON-safe: non-finite values become `null`).
    pub fn float(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            let _ = fmt::Write::write_fmt(&mut self.guard.buf, format_args!("{value}"));
        } else {
            self.guard.buf.push_str("null");
        }
        self
    }

    /// Appends a string field (escaped).
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        json::write_str(&mut self.guard.buf, value);
        self
    }

    /// Appends a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.guard
            .buf
            .push_str(if value { "true" } else { "false" });
        self
    }

    /// Appends an array of unsigned integers.
    pub fn nums(&mut self, key: &str, values: &[u64]) -> &mut Self {
        self.key(key);
        self.guard.buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.guard.buf.push(',');
            }
            push_u64(&mut self.guard.buf, *v);
        }
        self.guard.buf.push(']');
        self
    }
}

impl Drop for Event<'_> {
    fn drop(&mut self) {
        self.guard.buf.push_str("}\n");
    }
}

fn push_u64(buf: &mut String, v: u64) {
    let _ = fmt::Write::write_fmt(buf, format_args!("{v}"));
}

/// Wall-clock span timer for bracketing phases (GC mark/scan/sweep, workload
/// phases). Purely a convenience over [`Instant`]; the caller decides which
/// event the elapsed time lands in.
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer {
    start: Instant,
}

impl SpanTimer {
    /// Starts the timer.
    pub fn start() -> Self {
        SpanTimer {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since start (saturating at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_emits_nothing() {
        let t = Telemetry::disabled();
        assert!(t.event("x", 0).is_none());
        assert_eq!(t.event_count(), 0);
        t.set_enabled(true);
        t.event("x", 1).unwrap().num("n", 2);
        assert_eq!(t.event_count(), 1);
        assert_eq!(t.events_snapshot(), "{\"ev\":\"x\",\"t\":1,\"n\":2}\n");
    }

    #[test]
    fn event_fields_are_escaped_json() {
        let t = Telemetry::new();
        t.event("decision", 7)
            .unwrap()
            .str("label", "HashMap:\"A\".m:1\\x")
            .inum("delta", -3)
            .float("pct", 12.5)
            .bool("fired", true)
            .nums("shards", &[1, 2, 3]);
        let log = t.drain_events();
        let v = json::parse(log.trim()).expect("parses");
        assert_eq!(
            v.get("label").unwrap().as_str().unwrap(),
            "HashMap:\"A\".m:1\\x"
        );
        assert_eq!(v.get("delta").unwrap().as_f64().unwrap(), -3.0);
        assert!(v.get("fired").unwrap().as_bool().unwrap());
        assert!(t.events_snapshot().is_empty(), "drained");
        assert_eq!(t.event_count(), 1);
    }

    #[test]
    fn dump_appends_metric_lines() {
        let t = Telemetry::new();
        t.counter("a.count").add(3);
        drop(t.event("x", 0));
        let dump = t.dump_jsonl();
        json::validate_jsonl(&dump, &["ev"]).expect("all lines valid");
        assert!(dump.contains("\"name\":\"a.count\""));
    }

    #[test]
    fn span_timer_monotone() {
        let sp = SpanTimer::start();
        let a = sp.elapsed_ns();
        let b = sp.elapsed_ns();
        assert!(b >= a);
    }
}
