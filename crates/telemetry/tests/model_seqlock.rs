//! Model checking for the trace-ring seqlock (`trace.rs`).
//!
//! Run with `cargo test --features model -p chameleon-telemetry --test
//! model_seqlock`. Each test explores every schedule (bounded by the
//! explorer's preemption budget) of a writer pushing span records against
//! a reader snapshotting the ring. The reader-side model asserts inside
//! `snapshot_into` (mirror-word consistency and freshness) are what turn
//! a missing fence into a failing schedule: delete either `Release` fence
//! in `push` or the `Acquire` fence in `snapshot_into` and these tests
//! fail with a "torn record" / "stale record" assertion.

#![cfg(feature = "model")]

use chameleon_telemetry::trace::Tracer;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const MIN_SCHEDULES: u64 = 1_000;

/// Explorer tuned for these kernels: a deeper preemption budget than the
/// default and no state pruning, so the schedule count below reflects
/// genuinely distinct executions.
fn explorer() -> loom::Builder {
    loom::Builder {
        preemption_bound: 5,
        state_pruning: false,
        ..loom::Builder::default()
    }
}

/// Writer pushes records while a reader snapshots: every accepted record
/// must be well-formed (untorn, fresh — enforced by the model asserts in
/// `snapshot_into`), and the reader must never observe more records than
/// were pushed.
#[test]
fn writer_vs_reader_accepts_only_consistent_records() {
    let report = explorer().check(|| {
        let tracer = Tracer::with_capacity(4);
        let lane = tracer.lane(7);
        let writer = loom::thread::spawn(move || {
            lane.instant("alloc", &[("bytes", 64)]);
            lane.instant("free", &[("bytes", 32)]);
        });
        let seen = tracer.records();
        assert!(
            seen.len() <= 2,
            "reader saw {} records from 2 pushes",
            seen.len()
        );
        for rec in &seen {
            assert!(!rec.name.is_empty(), "accepted an empty record");
            assert!(rec.id != 0, "accepted a record with id 0");
        }
        writer.join().unwrap();
        // Writer quiesced: the snapshot is now exact.
        let settled = tracer.records();
        assert_eq!(settled.len(), 2, "quiesced snapshot must be exact");
    });
    assert!(
        report.schedules >= MIN_SCHEDULES,
        "explored only {} schedules",
        report.schedules
    );
}

/// Disarming the tracer mid-run must be safe against a concurrent writer:
/// pushes racing the disarm either land entirely or are skipped entirely
/// (the armed check is one load; the ring write is seqlock-protected
/// either way), and the ring stays consistent.
#[test]
fn disarm_races_writer_safely() {
    let pushed_when_armed = Arc::new(AtomicU64::new(0));
    let observed = Arc::new(AtomicU64::new(0));
    let pw = Arc::clone(&pushed_when_armed);
    let ow = Arc::clone(&observed);
    let report = explorer().check(move || {
        let tracer = Tracer::with_capacity(4);
        let lane = tracer.lane(1);
        let t2 = tracer.clone();
        let writer = loom::thread::spawn(move || {
            lane.instant("a", &[]);
            lane.instant("b", &[]);
        });
        tracer.set_armed(false);
        let mid = t2.records().len();
        assert!(mid <= 2, "mid-run snapshot saw more records than pushes");
        writer.join().unwrap();
        let seen = t2.records().len() as u64;
        assert!(seen <= 2, "more records than pushes");
        pw.fetch_add(2, Ordering::Relaxed);
        ow.fetch_add(seen, Ordering::Relaxed);
    });
    assert!(
        report.schedules >= MIN_SCHEDULES,
        "explored only {} schedules",
        report.schedules
    );
    // The disarm race must actually bite in some schedules (writer skips)
    // and miss in others (both records land) — otherwise the test is not
    // exercising the armed-load edge at all.
    let pushes = pushed_when_armed.load(Ordering::Relaxed);
    let seen = observed.load(Ordering::Relaxed);
    assert!(seen < pushes, "disarm never suppressed a push");
    assert!(seen > 0, "disarm suppressed every push in every schedule");
}

/// Slot-overwrite contention under the model: a capacity-2 ring sees its
/// first slot overwritten by the third push while the reader (window =
/// capacity − 1 = 1 slot) may be mid-copy on exactly that slot.
#[test]
fn overwrite_races_reader_safely() {
    let report = explorer().check(|| {
        let tracer = Tracer::with_capacity(2);
        let lane = tracer.lane(3);
        let writer = loom::thread::spawn(move || {
            lane.instant("x", &[]);
            lane.instant("y", &[]);
            lane.instant("z", &[]);
        });
        let seen = tracer.records();
        assert!(seen.len() <= 1, "window is one slot, got {}", seen.len());
        writer.join().unwrap();
        let settled = tracer.records();
        assert_eq!(
            settled.len(),
            1,
            "quiesced window must hold the newest record"
        );
        assert_eq!(settled[0].name, "z");
    });
    assert!(
        report.schedules >= MIN_SCHEDULES,
        "explored only {} schedules",
        report.schedules
    );
}
