//! # chameleon-core
//!
//! The Chameleon orchestrator (PLDI 2009): wires the simulated heap, the
//! instrumented collection library, the semantic profiler and the rule
//! engine into the paper's two operating modes:
//!
//! * **Offline methodology (§5.2)** — [`experiment::run_experiment`]:
//!   profile, evaluate rules, apply the suggestions as a portable policy,
//!   then measure minimal heap size (Fig. 6) and running time at the
//!   original minimal heap (Fig. 7) before and after.
//! * **Fully-automatic online mode (§3.3.2, §5.4)** —
//!   [`online::run_online`]: replacement decisions are made and installed
//!   while the program runs, paying the context-capture cost on every
//!   allocation.
//!
//! The [`Chameleon`] facade bundles the common case.
//!
//! # Examples
//!
//! ```
//! use chameleon_collections::CollectionFactory;
//! use chameleon_core::Chameleon;
//!
//! let workload = ("quick", |f: &CollectionFactory| {
//!     let _frame = f.enter("Quick.main:1");
//!     let mut keep = Vec::new();
//!     for _ in 0..30 {
//!         let mut m = f.new_map::<i64, i64>(None);
//!         m.put(1, 1);
//!         keep.push(m);
//!     }
//! });
//! let chameleon = Chameleon::new();
//! let result = chameleon.optimize(&workload);
//! assert!(result.min_heap_after <= result.min_heap_before);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod env;
pub mod experiment;
pub mod metrics;
pub mod minheap;
pub mod online;
pub mod parallel;
pub mod serve;
/// Public only under `--features model` so `tests/model_steal.rs` can
/// model-check the queues; an internal scheduling detail otherwise.
#[cfg(feature = "model")]
pub mod steal;
#[cfg(not(feature = "model"))]
mod steal;
mod sync;
pub mod workload;

pub use env::{portable_updates, Env, EnvConfig, PortableChoice, PortableUpdate};
pub use experiment::{run_experiment, run_quick_experiment, ExperimentResult, QuickExperiment};
pub use metrics::{Improvement, RunMetrics};
pub use minheap::{
    completes_under, completes_under_with, min_heap_size, min_heap_size_with, silence_oom_panics,
};
pub use online::{run_online, OnlineConfig, OnlineDriftConfig, OnlineError, OnlineResult};
pub use parallel::{default_threads, ParallelConfig, ParallelError, ParallelStats};
#[cfg(unix)]
pub use serve::serve_socket;
pub use serve::{serve_stream, Reply, ServeConfig, Server, WorkloadResolver};
pub use workload::{PartitionTask, Workload};

use chameleon_profiler::ProfileReport;
use chameleon_rules::RuleEngine;
use std::sync::Arc;

/// High-level facade over the full Chameleon pipeline.
pub struct Chameleon {
    engine: Arc<RuleEngine>,
    profile_config: EnvConfig,
    top_k: Option<usize>,
}

impl Default for Chameleon {
    fn default() -> Self {
        Chameleon::new()
    }
}

impl Chameleon {
    /// Chameleon with the built-in Table 2 rules and default configuration.
    pub fn new() -> Self {
        Chameleon {
            engine: Arc::new(RuleEngine::builtin()),
            profile_config: EnvConfig::default(),
            top_k: None,
        }
    }

    /// Replaces the rule engine (custom rules / tuned parameters).
    pub fn with_engine(mut self, engine: RuleEngine) -> Self {
        self.engine = Arc::new(engine);
        self
    }

    /// Replaces the profiling-environment configuration.
    pub fn with_profile_config(mut self, config: EnvConfig) -> Self {
        self.profile_config = config;
        self
    }

    /// Applies only the `k` highest-potential suggestions (the paper's
    /// "top allocation contexts").
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Attaches a telemetry sink: profiling runs emit metrics and JSONL
    /// events (GC cycles, workload spans, rule-decision audits).
    pub fn with_telemetry(mut self, telemetry: chameleon_telemetry::Telemetry) -> Self {
        self.profile_config.telemetry = Some(telemetry);
        self
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<&chameleon_telemetry::Telemetry> {
        self.profile_config.telemetry.as_ref()
    }

    /// Attaches an execution tracer: profiling runs record causal spans
    /// (workload, GC phases, partitions, merges) into the tracer's ring
    /// buffers for timeline export and flight-recorder dumps. Simulation
    /// results are bit-identical with tracing absent, armed or exporting.
    pub fn with_tracer(mut self, tracer: chameleon_telemetry::Tracer) -> Self {
        self.profile_config.tracer = Some(tracer);
        self
    }

    /// Enables continuous heap profiling in the profiling environment: a
    /// heap snapshot with retained-size attribution is captured every
    /// `every` GC cycles. Simulation results are bit-identical with or
    /// without it.
    pub fn with_heap_profiling(mut self, every: u64) -> Self {
        self.profile_config.heapprof = Some(chameleon_heap::HeapProfConfig { every });
        self
    }

    /// Profiles `workload` once and returns the environment itself, so
    /// callers can reach both the report *and* the heap (snapshots,
    /// context labels) — `chameleon heapprof` builds its exports this way.
    pub fn profile_env(&self, workload: &dyn Workload) -> Env {
        let env = Env::new(&self.profile_config);
        env.run(workload);
        env
    }

    /// Like [`Chameleon::profile_env`], but runs the workload on the
    /// parallel mutator runtime (`config.partitions` partitions on
    /// `config.threads` threads). With one partition this is exactly
    /// [`Chameleon::profile_env`].
    ///
    /// # Errors
    ///
    /// Fails when the workload is not partitionable or the configuration
    /// is invalid (see [`ParallelError`]).
    pub fn profile_env_parallel(
        &self,
        workload: &dyn Workload,
        config: ParallelConfig,
    ) -> Result<Env, ParallelError> {
        let env = Env::new(&self.profile_config);
        env.run_parallel(workload, config)?;
        Ok(env)
    }

    /// The rule engine in use.
    pub fn engine(&self) -> &RuleEngine {
        &self.engine
    }

    /// Profiles `workload` once and returns the report.
    pub fn profile(&self, workload: &dyn Workload) -> ProfileReport {
        let env = Env::new(&self.profile_config);
        env.run(workload);
        env.report()
    }

    /// Runs the full §5.2 methodology.
    pub fn optimize(&self, workload: &dyn Workload) -> ExperimentResult {
        run_experiment(workload, &self.engine, &self.profile_config, self.top_k)
    }

    /// Runs fully-automatic online mode.
    ///
    /// # Errors
    ///
    /// Fails when `config.env` disables profiling (see
    /// [`OnlineError::NotProfiling`]).
    pub fn optimize_online(
        &self,
        workload: &dyn Workload,
        config: &OnlineConfig,
    ) -> Result<OnlineResult, OnlineError> {
        run_online(workload, Arc::clone(&self.engine), config)
    }
}
