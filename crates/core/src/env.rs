//! Execution environments and portable policies.
//!
//! An [`Env`] bundles a fresh simulated heap, collection runtime, factory
//! and (optionally) profiler. Chameleon's methodology (§5.2) runs the same
//! workload in several environments — profiling run, optimized re-run,
//! minimal-heap trials — so policies must survive environment boundaries:
//! a [`PortableUpdate`] keys the override by the *context's frames* rather
//! than by a heap-local `ContextId`, and is re-interned into each new
//! environment.

use crate::metrics::RunMetrics;
use crate::workload::Workload;
use chameleon_collections::factory::{CaptureConfig, CaptureMethod, CollectionFactory, Selection};
use chameleon_collections::{CostModel, ListChoice, MapChoice, Runtime, SetChoice};
use chameleon_heap::{GcConfig, Heap, HeapConfig, HeapProfConfig};
use chameleon_profiler::{ProfileReport, Profiler};
use chameleon_rules::{PolicyUpdate, Suggestion};
use chameleon_telemetry::{Telemetry, TraceLane, Tracer};
use std::sync::Arc;

/// Environment construction parameters.
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// Heap capacity in bytes (None = unbounded).
    pub heap_capacity: Option<u64>,
    /// Allocation-driven GC interval for unbounded profiling runs.
    pub gc_interval_bytes: Option<u64>,
    /// Context-capture configuration.
    pub capture: CaptureConfig,
    /// Operation cost model.
    pub cost: CostModel,
    /// Whether to install a profiler (collect trace statistics).
    pub profiling: bool,
    /// GC marking threads.
    pub gc_threads: usize,
    /// Object layout model (the paper's 32-bit JVM by default).
    pub model: chameleon_heap::MemoryModel,
    /// Telemetry sink to attach to the heap and runtime (None = no
    /// observability; the hot paths stay branch-only).
    pub telemetry: Option<Telemetry>,
    /// Continuous heap profiling: capture a [`chameleon_heap::HeapSnapshot`]
    /// every `every` GC cycles (None = off; simulation results are
    /// bit-identical either way).
    pub heapprof: Option<HeapProfConfig>,
    /// Execution tracer for causal spans (None = tracing compiled out of
    /// the run; with a disarmed tracer the hot path is one relaxed load).
    /// Tracing never charges the simulated clock, so results are
    /// bit-identical with tracing absent, armed, or exporting.
    pub tracer: Option<Tracer>,
    /// Build the heap in single-mutator shard mode (no per-op mutex; see
    /// [`chameleon_heap::HeapConfig::shard_local`]). The parallel runner
    /// sets this for its hermetic partition environments; sequential
    /// environments keep the shared representation.
    pub shard_heap: bool,
    /// Partition index forwarded to [`chameleon_heap::HeapConfig::shard_index`]
    /// so a shard heap's concurrent-entry panic names its partition. Only
    /// meaningful with [`EnvConfig::shard_heap`]; the parallel runner sets it
    /// per partition.
    pub shard_index: Option<usize>,
    /// Portable policy installed at construction ([`Env::apply_policy`]).
    /// Carrying the policy in the config — rather than applying it to a
    /// built environment — makes it reach the hermetic partition
    /// environments of [`Env::run_parallel`], which clone the parent
    /// config: a policy-carrying parallel re-run exercises the replacement
    /// collections inside every partition, not just the merge phase.
    pub policy: Vec<PortableUpdate>,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            heap_capacity: None,
            gc_interval_bytes: Some(256 * 1024),
            capture: CaptureConfig::default(),
            cost: CostModel::calibrated(),
            profiling: true,
            gc_threads: 1,
            model: chameleon_heap::MemoryModel::jvm32(),
            telemetry: None,
            heapprof: None,
            tracer: None,
            shard_heap: false,
            shard_index: None,
            policy: Vec::new(),
        }
    }
}

impl EnvConfig {
    /// Configuration for a measured re-run: no profiling, zero-cost
    /// *static* context resolution (the applied fixes behave like
    /// source-level rewrites), fixed heap capacity (the paper measures at
    /// the original minimal heap size).
    pub fn measured(heap_capacity: u64) -> Self {
        EnvConfig {
            heap_capacity: Some(heap_capacity),
            gc_interval_bytes: None,
            capture: CaptureConfig {
                method: CaptureMethod::Static,
                ..CaptureConfig::default()
            },
            profiling: false,
            ..EnvConfig::default()
        }
    }
}

/// One replacement decision keyed portably by context frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortableUpdate {
    /// Requested source type of the context.
    pub src_type: String,
    /// Context frames, innermost first.
    pub frames: Vec<String>,
    /// The concrete selection.
    pub kind: PortableChoice,
}

/// Kind-specific selection payload of a [`PortableUpdate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortableChoice {
    /// List override.
    List(Selection<ListChoice>),
    /// Set override.
    Set(Selection<SetChoice>),
    /// Map override.
    Map(Selection<MapChoice>),
}

/// Converts applicable suggestions into portable updates, using `heap` to
/// resolve context frames. Advisory suggestions are skipped.
pub fn portable_updates(suggestions: &[Suggestion], heap: &Heap) -> Vec<PortableUpdate> {
    suggestions
        .iter()
        .filter_map(|s| {
            let update = s.policy_update()?;
            let ctx = s.ctx.expect("policy_update implies captured ctx");
            let frames = heap.context_frames(ctx);
            let kind = match update {
                PolicyUpdate::List(_, sel) => PortableChoice::List(sel),
                PolicyUpdate::Set(_, sel) => PortableChoice::Set(sel),
                PolicyUpdate::Map(_, sel) => PortableChoice::Map(sel),
            };
            Some(PortableUpdate {
                src_type: s.src_type.clone(),
                frames,
                kind,
            })
        })
        .collect()
}

/// A fresh execution environment.
pub struct Env {
    /// The simulated heap.
    pub heap: Heap,
    /// The collection runtime.
    pub rt: Runtime,
    /// The factory workloads allocate through.
    pub factory: CollectionFactory,
    /// The profiler, when profiling is enabled.
    pub profiler: Option<Arc<Profiler>>,
    /// This environment's trace lane (lane 0 for the parent environment;
    /// partition environments get the owning worker's lane).
    pub(crate) trace: Option<TraceLane>,
    capture_depth: usize,
    /// The construction parameters, kept so the parallel runner can build
    /// identically configured hermetic partition environments.
    pub(crate) config: EnvConfig,
}

impl Env {
    /// Builds an environment from `config`.
    pub fn new(config: &EnvConfig) -> Self {
        let heap = Heap::with_config(HeapConfig {
            capacity: config.heap_capacity,
            gc_interval_bytes: config.gc_interval_bytes,
            gc: GcConfig {
                threads: config.gc_threads,
                ..GcConfig::default()
            },
            model: config.model,
            shard_local: config.shard_heap,
            shard_index: config.shard_index,
        });
        heap.set_heap_profiling(config.heapprof);
        let rt = Runtime::with_cost(heap.clone(), config.cost);
        if let Some(t) = &config.telemetry {
            rt.attach_telemetry(t);
        }
        let profiler = config.profiling.then(|| Profiler::install(&rt));
        let factory = CollectionFactory::with_capture(rt.clone(), config.capture.clone());
        let trace = config.tracer.as_ref().map(|tr| {
            let lane = tr.lane(tr.default_lane());
            heap.attach_tracer(&lane);
            lane
        });
        let env = Env {
            heap,
            rt,
            factory,
            profiler,
            trace,
            capture_depth: config.capture.depth,
            config: config.clone(),
        };
        if !config.policy.is_empty() {
            env.apply_policy(&config.policy);
        }
        env
    }

    /// Re-interns and installs portable policy updates into this
    /// environment's factory.
    pub fn apply_policy(&self, updates: &[PortableUpdate]) {
        let policy = self.factory.policy();
        let mut policy = policy.lock();
        for u in updates {
            let ctx = self
                .heap
                .intern_context(&u.src_type, &u.frames, self.capture_depth);
            match u.kind {
                PortableChoice::List(sel) => policy.set_list(ctx, sel),
                PortableChoice::Set(sel) => policy.set_set(ctx, sel),
                PortableChoice::Map(sel) => policy.set_map(ctx, sel),
            }
        }
    }

    /// Runs `workload` to completion and performs a final GC so end-of-run
    /// live data is recorded.
    ///
    /// When telemetry is attached and enabled, the run is bracketed by
    /// `workload_begin` / `workload_end` events on the shared `SimClock`;
    /// the end event carries the run's headline metrics.
    pub fn run(&self, workload: &dyn Workload) {
        let _span = self.trace.as_ref().and_then(|l| l.scope("workload"));
        let telemetry = self.rt.telemetry().filter(|t| t.is_enabled());
        if let Some(t) = &telemetry {
            if let Some(mut e) = t.event("workload_begin", self.rt.clock().now()) {
                e.str("name", workload.name());
            }
        }
        workload.run(&self.factory);
        self.heap.gc();
        // Collections still live at workload end never reach the death
        // sink on their own; deliver their statistics as survivors so
        // long-lived contexts are visible to the profile and the online
        // engine's converged policy.
        self.rt.flush_survivors();
        if let Some(t) = &telemetry {
            let m = self.metrics();
            if let Some(mut e) = t.event("workload_end", m.sim_time) {
                e.str("name", workload.name())
                    .num("sim_time", m.sim_time)
                    .num("peak_live_bytes", m.peak_live_bytes)
                    .num("gc_count", m.gc_count)
                    .num("allocated_bytes", m.total_allocated_bytes)
                    .num("allocated_objects", m.total_allocated_objects)
                    .num("capture_count", m.capture_count);
            }
        }
    }

    /// Extracts the run's metrics.
    pub fn metrics(&self) -> RunMetrics {
        let cycles = self.heap.cycles();
        let peak_live = cycles.iter().map(|c| c.live_bytes).max().unwrap_or(0);
        RunMetrics {
            sim_time: self.rt.clock().now(),
            peak_live_bytes: peak_live,
            gc_count: self.heap.gc_count(),
            total_allocated_bytes: self.heap.total_allocated_bytes(),
            total_allocated_objects: self.heap.total_allocated_objects(),
            capture_count: self.factory.capture_count(),
        }
    }

    /// Builds the profile report (profiling environments only).
    ///
    /// # Panics
    ///
    /// Panics if the environment was created with `profiling: false`.
    pub fn report(&self) -> ProfileReport {
        let profiler = self
            .profiler
            .as_ref()
            .expect("report() requires a profiling environment");
        ProfileReport::build(profiler, &self.heap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workload() -> impl Workload {
        ("tiny", |f: &CollectionFactory| {
            let _g = f.enter("T.site:1");
            for _ in 0..10 {
                let mut m = f.new_map::<i64, i64>(None);
                for i in 0..3 {
                    m.put(i, i);
                }
            }
        })
    }

    #[test]
    fn profiling_env_produces_report() {
        let env = Env::new(&EnvConfig::default());
        env.run(&tiny_workload());
        let report = env.report();
        assert_eq!(report.contexts.len(), 1);
        assert_eq!(report.contexts[0].src_type, "HashMap");
        let m = env.metrics();
        assert!(m.sim_time > 0);
        assert!(m.gc_count >= 1);
    }

    #[test]
    fn measured_env_has_no_capture_overhead() {
        let cfg = EnvConfig::measured(64 * 1024 * 1024);
        let env = Env::new(&cfg);
        env.run(&tiny_workload());
        assert_eq!(env.metrics().capture_count, 0);
        assert!(env.profiler.is_none());
    }

    #[test]
    fn long_lived_list_receives_suggestion_via_survivor_flush() {
        use chameleon_rules::RuleEngine;
        use std::cell::RefCell;

        // Holds its list past the end of `run`, like a cache a server
        // keeps for its whole lifetime.
        struct HoldsList(RefCell<Vec<chameleon_collections::ListHandle<i64>>>);
        impl Workload for HoldsList {
            fn name(&self) -> &'static str {
                "holds-list"
            }
            fn run(&self, f: &CollectionFactory) {
                let _g = f.enter("Hold.site:9");
                let mut l = f.new_list::<i64>(None);
                for i in 0..64 {
                    l.add(i);
                }
                self.0.borrow_mut().push(l);
            }
        }

        let w = HoldsList(RefCell::new(Vec::new()));
        let env = Env::new(&EnvConfig::default());
        env.run(&w);
        let report = env.report();
        let ctx = report
            .by_label(&format!("{}:{}", "ArrayList", "Hold.site:9"))
            .expect("long-lived context present in the profile");
        assert_eq!(ctx.trace.instances, 1);
        assert_eq!(ctx.trace.survivors, 1, "flushed as a survivor");
        // The context grew far beyond its initial capacity, so the built-in
        // capacity-tuning rule must fire — previously the instance never
        // reached the profiler and produced no suggestion at all.
        let suggestions = RuleEngine::builtin().evaluate(&report);
        assert!(
            suggestions.iter().any(|s| s.ctx == ctx.ctx),
            "expected a suggestion for the survivor context: {suggestions:?}"
        );
    }

    #[test]
    fn portable_policy_survives_environments() {
        // Profile in env 1.
        let env1 = Env::new(&EnvConfig::default());
        env1.run(&tiny_workload());
        let report = env1.report();
        let ctx = report.contexts[0].ctx.expect("captured");
        let frames = env1.heap.context_frames(ctx);
        let update = PortableUpdate {
            src_type: "HashMap".to_owned(),
            frames,
            kind: PortableChoice::Map(Selection {
                choice: MapChoice::ArrayMap,
                capacity: Some(4),
            }),
        };
        // Apply in env 2 and verify the override takes effect.
        let env2 = Env::new(&EnvConfig::default());
        env2.apply_policy(&[update]);
        let _g = env2.factory.enter("T.site:1");
        let m = env2.factory.new_map::<i64, i64>(None);
        assert_eq!(m.impl_name(), "ArrayMap");
    }
}
