//! The §5.2 methodology, automated end to end:
//!
//! 1. run the workload under the semantic profiler;
//! 2. evaluate the selection rules over the profile;
//! 3. apply the (auto-applicable) suggestions as a portable policy;
//! 4. measure the minimal heap size before and after;
//! 5. measure running time before and after, both at the *original*
//!    minimal heap size (as Fig. 7 does).

use crate::env::{portable_updates, Env, EnvConfig, PortableUpdate};
use crate::metrics::{Improvement, RunMetrics};
use crate::minheap::min_heap_size_with;
use crate::parallel::{ParallelConfig, ParallelError};
use crate::workload::Workload;
use chameleon_profiler::ProfileReport;
use chameleon_rules::{RuleEngine, Suggestion};

/// Outcome of a full before/after experiment on one workload.
#[derive(Debug)]
pub struct ExperimentResult {
    /// Workload name.
    pub name: &'static str,
    /// The profiling report.
    pub report: ProfileReport,
    /// All suggestions the rule engine produced.
    pub suggestions: Vec<Suggestion>,
    /// The policy actually applied (auto-applicable suggestions only,
    /// possibly truncated to the top-k).
    pub applied: Vec<PortableUpdate>,
    /// Minimal heap size with default collections.
    pub min_heap_before: u64,
    /// Minimal heap size with Chameleon's policy.
    pub min_heap_after: u64,
    /// Measured run with default collections at `min_heap_before`.
    pub time_before: RunMetrics,
    /// Measured run with the policy at `min_heap_before`.
    pub time_after: RunMetrics,
}

impl ExperimentResult {
    /// Minimal-heap improvement (Fig. 6's metric).
    pub fn space_improvement(&self) -> Improvement {
        Improvement::new(self.min_heap_before as f64, self.min_heap_after as f64)
    }

    /// Running-time improvement at the original minimal heap (Fig. 7's
    /// metric).
    pub fn time_improvement(&self) -> Improvement {
        Improvement::new(
            self.time_before.sim_time as f64,
            self.time_after.sim_time as f64,
        )
    }

    /// GC-count improvement (reported for PMD in §5.3).
    pub fn gc_improvement(&self) -> Improvement {
        Improvement::new(
            self.time_before.gc_count as f64,
            self.time_after.gc_count as f64,
        )
    }
}

/// Runs the full methodology on `workload`.
///
/// `top_k` limits how many of the highest-potential suggestions are applied
/// (the paper modifies "the top allocation contexts"); `None` applies all.
pub fn run_experiment(
    workload: &dyn Workload,
    engine: &RuleEngine,
    profile_config: &EnvConfig,
    top_k: Option<usize>,
) -> ExperimentResult {
    // Step 1: profiling run.
    let env = Env::new(profile_config);
    env.run(workload);
    let report = env.report();

    // Step 2: rule evaluation (audited when telemetry is attached).
    let suggestions = engine.evaluate_traced(&report, profile_config.telemetry.as_ref());

    // Step 3: portable policy from the top-k applicable suggestions.
    let applicable: Vec<Suggestion> = suggestions
        .iter()
        .filter(|s| s.auto_applicable())
        .take(top_k.unwrap_or(usize::MAX))
        .cloned()
        .collect();
    let applied = portable_updates(&applicable, &env.heap);

    // Step 4: minimal heap before/after (under the same layout/cost model
    // as the profiling run).
    let hint = report.peak_live().max(64 * 1024);
    let min_heap_before = min_heap_size_with(workload, &[], hint, profile_config);
    let min_heap_after = min_heap_size_with(workload, &applied, hint, profile_config);

    // Step 5: measured runs at the original minimal heap size. The paper
    // finds the minimum at -Xmx granularity, which leaves slack; our search
    // is byte-exact, so running at exactly `min_heap_before` would thrash
    // the collector in a way no real JVM configuration does. A fixed 12.5%
    // slack models the coarse-granularity minimum for both versions.
    let measured = EnvConfig {
        model: profile_config.model,
        cost: profile_config.cost,
        gc_threads: profile_config.gc_threads,
        ..EnvConfig::measured(min_heap_before + min_heap_before / 8)
    };
    let before_env = Env::new(&measured);
    before_env.run(workload);
    let time_before = before_env.metrics();

    let after_env = Env::new(&measured);
    after_env.apply_policy(&applied);
    after_env.run(workload);
    let time_after = after_env.metrics();

    ExperimentResult {
        name: workload.name(),
        report,
        suggestions,
        applied,
        min_heap_before,
        min_heap_after,
        time_before,
        time_after,
    }
}

/// Outcome of a quick profile → suggest → apply → re-run cycle on one
/// workload (no minimal-heap search). This is the per-cell experiment the
/// evaluation matrix runs: both runs use the *same* `config`, so the cost
/// ratio compares the policy against the baseline under identical heap
/// limits, capture settings and thread counts.
#[derive(Debug)]
pub struct QuickExperiment {
    /// Workload name.
    pub name: &'static str,
    /// The profiling report from the baseline run.
    pub report: ProfileReport,
    /// All suggestions the rule engine produced.
    pub suggestions: Vec<Suggestion>,
    /// The policy applied to the re-run (all auto-applicable suggestions).
    pub applied: Vec<PortableUpdate>,
    /// Metrics of the baseline run.
    pub before: RunMetrics,
    /// Metrics of the policy re-run.
    pub after: RunMetrics,
    /// Per-cycle GC pause costs (simulated units) of the baseline run.
    pub pause_units_before: Vec<u64>,
    /// Per-cycle GC pause costs (simulated units) of the policy re-run.
    pub pause_units_after: Vec<u64>,
}

impl QuickExperiment {
    /// Simulated-time cost ratio of the policy run over the baseline
    /// (1.0 = no change, < 1.0 = the policy is cheaper).
    pub fn cost_ratio(&self) -> f64 {
        if self.before.sim_time == 0 {
            return 1.0;
        }
        self.after.sim_time as f64 / self.before.sim_time as f64
    }
}

/// Runs the quick experiment: one profiled baseline run, rule evaluation,
/// and one re-run with every auto-applicable suggestion installed as a
/// portable policy — both under `config`, both through
/// [`Env::run_parallel`] when `parallel` is given (the policy reaches the
/// hermetic partition environments via [`EnvConfig::policy`]).
///
/// # Errors
///
/// Propagates [`ParallelError`] when `parallel` is given and the workload
/// cannot run under that partitioning (e.g. it has no partition plan).
pub fn run_quick_experiment(
    workload: &dyn Workload,
    engine: &RuleEngine,
    config: &EnvConfig,
    parallel: Option<ParallelConfig>,
) -> Result<QuickExperiment, ParallelError> {
    let run = |cfg: &EnvConfig| -> Result<Env, ParallelError> {
        let env = Env::new(cfg);
        match parallel {
            Some(pc) => {
                env.run_parallel(workload, pc)?;
            }
            None => env.run(workload),
        }
        Ok(env)
    };

    let env = run(config)?;
    let report = env.report();
    let suggestions = engine.evaluate_traced(&report, config.telemetry.as_ref());
    let applicable: Vec<Suggestion> = suggestions
        .iter()
        .filter(|s| s.auto_applicable())
        .cloned()
        .collect();
    let applied = portable_updates(&applicable, &env.heap);
    let before = env.metrics();
    let pause_units_before = env
        .heap
        .cycles()
        .iter()
        .map(|c| c.pause_cost_units)
        .collect();

    let after_config = EnvConfig {
        policy: applied.clone(),
        ..config.clone()
    };
    let after_env = run(&after_config)?;
    let after = after_env.metrics();
    let pause_units_after = after_env
        .heap
        .cycles()
        .iter()
        .map(|c| c.pause_cost_units)
        .collect();

    Ok(QuickExperiment {
        name: workload.name(),
        report,
        suggestions,
        applied,
        before,
        after,
        pause_units_before,
        pause_units_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use chameleon_collections::CollectionFactory;

    /// A TVLA-flavored miniature: many small long-lived HashMaps.
    fn small_maps() -> impl Workload {
        ("mini-tvla", |f: &CollectionFactory| {
            let _g = f.enter("mini.StateFactory:31");
            let mut states = Vec::new();
            for s in 0..60 {
                let mut m = f.new_map::<i64, i64>(None);
                for i in 0..5 {
                    m.put(i, s * 10 + i);
                }
                let _ = m.get(&2);
                states.push(m);
            }
            // Read phase.
            for m in &states {
                let _ = m.get(&1);
            }
        })
    }

    #[test]
    fn experiment_improves_space_and_time() {
        let engine = RuleEngine::builtin();
        let result = run_experiment(&small_maps(), &engine, &EnvConfig::default(), None);
        assert!(
            !result.applied.is_empty(),
            "expected applicable suggestions: {:?}",
            result.suggestions
        );
        let space = result.space_improvement();
        assert!(
            space.pct() > 20.0,
            "sparse HashMaps -> ArrayMap should save >20% min-heap, got {:.1}% \
             ({} -> {})",
            space.pct(),
            result.min_heap_before,
            result.min_heap_after
        );
        let time = result.time_improvement();
        assert!(
            time.pct() > -20.0,
            "small maps should not get dramatically slower: {:.1}%",
            time.pct()
        );
    }

    #[test]
    fn top_k_limits_applied_contexts() {
        let w = ("two-sites", |f: &CollectionFactory| {
            let mut keep = Vec::new();
            {
                let _g = f.enter("siteA:1");
                for _ in 0..20 {
                    let mut m = f.new_map::<i64, i64>(None);
                    m.put(1, 1);
                    keep.push(m);
                }
            }
            {
                let _g = f.enter("siteB:2");
                for _ in 0..10 {
                    let mut m = f.new_map::<i64, i64>(None);
                    m.put(1, 1);
                    keep.push(m);
                }
            }
        });
        let engine = RuleEngine::builtin();
        let result = run_experiment(&w, &engine, &EnvConfig::default(), Some(1));
        assert_eq!(result.applied.len(), 1);
        // The applied one must be the higher-potential site (siteA).
        assert!(result.applied[0].frames[0].contains("siteA"));
    }

    #[test]
    fn quick_experiment_applies_policy_and_improves() {
        let engine = RuleEngine::builtin();
        let quick = run_quick_experiment(&small_maps(), &engine, &EnvConfig::default(), None)
            .expect("sequential quick experiment");
        assert!(
            !quick.applied.is_empty(),
            "expected applicable suggestions: {:?}",
            quick.suggestions
        );
        assert!(
            quick.after.total_allocated_bytes < quick.before.total_allocated_bytes,
            "sparse HashMaps -> ArrayMap should shrink allocation: {} -> {}",
            quick.before.total_allocated_bytes,
            quick.after.total_allocated_bytes
        );
        assert!(quick.cost_ratio() > 0.0);
    }

    #[test]
    fn quick_experiment_parallel_matches_sequential_profile() {
        use chameleon_workloads_shim::partitionable;
        let w = partitionable();
        let engine = RuleEngine::builtin();
        let seq =
            run_quick_experiment(&w, &engine, &EnvConfig::default(), None).expect("sequential run");
        let par = run_quick_experiment(
            &w,
            &engine,
            &EnvConfig::default(),
            Some(ParallelConfig {
                partitions: 2,
                threads: 2,
            }),
        )
        .expect("parallel run");
        // Rule evaluation sees the same merged profile either way.
        let render = |s: &[Suggestion]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert_eq!(render(&seq.suggestions), render(&par.suggestions));
    }

    #[test]
    fn config_policy_reaches_partition_environments() {
        use chameleon_workloads_shim::partitionable;
        let w = partitionable();
        let engine = RuleEngine::builtin();
        let pc = ParallelConfig {
            partitions: 2,
            threads: 2,
        };
        let quick = run_quick_experiment(&w, &engine, &EnvConfig::default(), Some(pc))
            .expect("parallel quick experiment");
        assert!(!quick.applied.is_empty(), "need a policy to propagate");
        // A re-run whose *config* carries the policy must allocate less
        // inside the partitions — if the hermetic child environments
        // dropped the policy, allocation would match the baseline exactly.
        assert!(
            quick.after.total_allocated_bytes < quick.before.total_allocated_bytes,
            "policy had no effect inside partitions: {} -> {}",
            quick.before.total_allocated_bytes,
            quick.after.total_allocated_bytes
        );
    }

    /// Minimal partitionable workload for the parallel quick-experiment
    /// tests (the real partitionable workloads live in
    /// `chameleon-workloads`, which depends on this crate).
    mod chameleon_workloads_shim {
        use crate::workload::{PartitionTask, Workload};
        use chameleon_collections::CollectionFactory;

        struct PartitionedMaps;

        fn fill(f: &CollectionFactory, site: &str, count: usize) {
            let _g = f.enter(site);
            let mut keep = Vec::new();
            for s in 0..count {
                let mut m = f.new_map::<i64, i64>(None);
                for i in 0..4 {
                    m.put(i, s as i64 * 10 + i);
                }
                let _ = m.get(&2);
                keep.push(m);
            }
        }

        impl Workload for PartitionedMaps {
            fn name(&self) -> &'static str {
                "partitioned-maps"
            }
            fn run(&self, f: &CollectionFactory) {
                fill(f, "part.Site:0", 40);
                fill(f, "part.Site:1", 40);
            }
            fn partitions(&self, parts: usize) -> Option<Vec<PartitionTask>> {
                let parts = parts.min(2);
                Some(
                    (0..parts)
                        .map(|p| {
                            PartitionTask::new(format!("part{p}"), move |f: &CollectionFactory| {
                                fill(f, &format!("part.Site:{p}"), 40);
                                if parts == 1 {
                                    fill(f, "part.Site:1", 40);
                                }
                            })
                        })
                        .collect(),
                )
            }
        }

        pub fn partitionable() -> impl Workload {
            PartitionedMaps
        }
    }
}
