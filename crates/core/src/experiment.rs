//! The §5.2 methodology, automated end to end:
//!
//! 1. run the workload under the semantic profiler;
//! 2. evaluate the selection rules over the profile;
//! 3. apply the (auto-applicable) suggestions as a portable policy;
//! 4. measure the minimal heap size before and after;
//! 5. measure running time before and after, both at the *original*
//!    minimal heap size (as Fig. 7 does).

use crate::env::{portable_updates, Env, EnvConfig, PortableUpdate};
use crate::metrics::{Improvement, RunMetrics};
use crate::minheap::min_heap_size_with;
use crate::workload::Workload;
use chameleon_profiler::ProfileReport;
use chameleon_rules::{RuleEngine, Suggestion};

/// Outcome of a full before/after experiment on one workload.
#[derive(Debug)]
pub struct ExperimentResult {
    /// Workload name.
    pub name: &'static str,
    /// The profiling report.
    pub report: ProfileReport,
    /// All suggestions the rule engine produced.
    pub suggestions: Vec<Suggestion>,
    /// The policy actually applied (auto-applicable suggestions only,
    /// possibly truncated to the top-k).
    pub applied: Vec<PortableUpdate>,
    /// Minimal heap size with default collections.
    pub min_heap_before: u64,
    /// Minimal heap size with Chameleon's policy.
    pub min_heap_after: u64,
    /// Measured run with default collections at `min_heap_before`.
    pub time_before: RunMetrics,
    /// Measured run with the policy at `min_heap_before`.
    pub time_after: RunMetrics,
}

impl ExperimentResult {
    /// Minimal-heap improvement (Fig. 6's metric).
    pub fn space_improvement(&self) -> Improvement {
        Improvement::new(self.min_heap_before as f64, self.min_heap_after as f64)
    }

    /// Running-time improvement at the original minimal heap (Fig. 7's
    /// metric).
    pub fn time_improvement(&self) -> Improvement {
        Improvement::new(
            self.time_before.sim_time as f64,
            self.time_after.sim_time as f64,
        )
    }

    /// GC-count improvement (reported for PMD in §5.3).
    pub fn gc_improvement(&self) -> Improvement {
        Improvement::new(
            self.time_before.gc_count as f64,
            self.time_after.gc_count as f64,
        )
    }
}

/// Runs the full methodology on `workload`.
///
/// `top_k` limits how many of the highest-potential suggestions are applied
/// (the paper modifies "the top allocation contexts"); `None` applies all.
pub fn run_experiment(
    workload: &dyn Workload,
    engine: &RuleEngine,
    profile_config: &EnvConfig,
    top_k: Option<usize>,
) -> ExperimentResult {
    // Step 1: profiling run.
    let env = Env::new(profile_config);
    env.run(workload);
    let report = env.report();

    // Step 2: rule evaluation (audited when telemetry is attached).
    let suggestions = engine.evaluate_traced(&report, profile_config.telemetry.as_ref());

    // Step 3: portable policy from the top-k applicable suggestions.
    let applicable: Vec<Suggestion> = suggestions
        .iter()
        .filter(|s| s.auto_applicable())
        .take(top_k.unwrap_or(usize::MAX))
        .cloned()
        .collect();
    let applied = portable_updates(&applicable, &env.heap);

    // Step 4: minimal heap before/after (under the same layout/cost model
    // as the profiling run).
    let hint = report.peak_live().max(64 * 1024);
    let min_heap_before = min_heap_size_with(workload, &[], hint, profile_config);
    let min_heap_after = min_heap_size_with(workload, &applied, hint, profile_config);

    // Step 5: measured runs at the original minimal heap size. The paper
    // finds the minimum at -Xmx granularity, which leaves slack; our search
    // is byte-exact, so running at exactly `min_heap_before` would thrash
    // the collector in a way no real JVM configuration does. A fixed 12.5%
    // slack models the coarse-granularity minimum for both versions.
    let measured = EnvConfig {
        model: profile_config.model,
        cost: profile_config.cost,
        gc_threads: profile_config.gc_threads,
        ..EnvConfig::measured(min_heap_before + min_heap_before / 8)
    };
    let before_env = Env::new(&measured);
    before_env.run(workload);
    let time_before = before_env.metrics();

    let after_env = Env::new(&measured);
    after_env.apply_policy(&applied);
    after_env.run(workload);
    let time_after = after_env.metrics();

    ExperimentResult {
        name: workload.name(),
        report,
        suggestions,
        applied,
        min_heap_before,
        min_heap_after,
        time_before,
        time_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use chameleon_collections::CollectionFactory;

    /// A TVLA-flavored miniature: many small long-lived HashMaps.
    fn small_maps() -> impl Workload {
        ("mini-tvla", |f: &CollectionFactory| {
            let _g = f.enter("mini.StateFactory:31");
            let mut states = Vec::new();
            for s in 0..60 {
                let mut m = f.new_map::<i64, i64>(None);
                for i in 0..5 {
                    m.put(i, s * 10 + i);
                }
                let _ = m.get(&2);
                states.push(m);
            }
            // Read phase.
            for m in &states {
                let _ = m.get(&1);
            }
        })
    }

    #[test]
    fn experiment_improves_space_and_time() {
        let engine = RuleEngine::builtin();
        let result = run_experiment(&small_maps(), &engine, &EnvConfig::default(), None);
        assert!(
            !result.applied.is_empty(),
            "expected applicable suggestions: {:?}",
            result.suggestions
        );
        let space = result.space_improvement();
        assert!(
            space.pct() > 20.0,
            "sparse HashMaps -> ArrayMap should save >20% min-heap, got {:.1}% \
             ({} -> {})",
            space.pct(),
            result.min_heap_before,
            result.min_heap_after
        );
        let time = result.time_improvement();
        assert!(
            time.pct() > -20.0,
            "small maps should not get dramatically slower: {:.1}%",
            time.pct()
        );
    }

    #[test]
    fn top_k_limits_applied_contexts() {
        let w = ("two-sites", |f: &CollectionFactory| {
            let mut keep = Vec::new();
            {
                let _g = f.enter("siteA:1");
                for _ in 0..20 {
                    let mut m = f.new_map::<i64, i64>(None);
                    m.put(1, 1);
                    keep.push(m);
                }
            }
            {
                let _g = f.enter("siteB:2");
                for _ in 0..10 {
                    let mut m = f.new_map::<i64, i64>(None);
                    m.put(1, 1);
                    keep.push(m);
                }
            }
        });
        let engine = RuleEngine::builtin();
        let result = run_experiment(&w, &engine, &EnvConfig::default(), Some(1));
        assert_eq!(result.applied.len(), 1);
        // The applied one must be the higher-potential site (siteA).
        assert!(result.applied[0].frames[0].contains("siteA"));
    }
}
