//! Fully-automatic online replacement mode (§3.3.2, §5.4).
//!
//! Replacements happen *while the program runs*: the profiler keeps
//! aggregating, and every `eval_every_deaths` collection deaths the rule
//! engine re-evaluates the current profile — which take effect at
//! subsequent allocations ("switching is localized as it occurs when a
//! collection object is allocated", §6). The run pays the context-capture
//! cost on every allocation, which is exactly the §5.4 bottleneck the
//! paper measures (TVLA 35% slowdown, PMD 6×).
//!
//! Installation is gated by a **hysteresis policy** (Makor et al. 2025's
//! anti-oscillation stance): a policy change — including a reversal back
//! to the requested default — must win [`OnlineConfig::confirm_evals`]
//! consecutive evaluations, and a suggestion must clear the
//! [`OnlineConfig::min_potential_bytes`] confidence floor, before the
//! factory's [`SelectionPolicy`] is touched. Mid-run installation uses the
//! same `auto_applicable` gate as the converged policy: advisory and
//! cross-kind suggestions are never installed while the program runs.
//!
//! An optional drift tracker ([`OnlineDriftConfig`]) feeds per-type
//! death-rate and potential deltas into a [`SeriesStore`] each evaluation;
//! when [`SeriesStore::detect_drift`] flags a phase shift, the sink
//! re-enables every §4.2 capture shutoff, resets the profiler (fresh
//! aggregation for the new phase) and re-arms the hysteresis counters.

use crate::env::{portable_updates, Env, EnvConfig, PortableUpdate};
use crate::metrics::RunMetrics;
use crate::workload::Workload;
use chameleon_collections::factory::CaptureController;
use chameleon_collections::runtime::{InstanceStats, StatsSink};
use chameleon_collections::SelectionPolicy;
use chameleon_heap::{ContextId, Heap};
use chameleon_profiler::{ProfileReport, Profiler};
use chameleon_rules::{PolicyUpdate, RuleEngine};
use chameleon_telemetry::series::{DriftConfig, SeriesStore};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Online-mode configuration.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Environment for the run (capture should be enabled — that is the
    /// point of the experiment).
    pub env: EnvConfig,
    /// Re-evaluate rules every this many collection deaths.
    pub eval_every_deaths: u64,
    /// §4.2's per-type shutoff: after each evaluation, stop capturing
    /// contexts for requested types whose total observed potential is
    /// below this many bytes (None = never shut off).
    pub shutoff_below_potential: Option<u64>,
    /// Hysteresis window: a policy change must win this many consecutive
    /// evaluations before it is installed (1 = apply immediately, the
    /// pre-hysteresis behaviour). Reversals pay the same price.
    pub confirm_evals: u64,
    /// Confidence floor: suggestions whose potential saving is below this
    /// many bytes never become installation candidates.
    pub min_potential_bytes: u64,
    /// Drift-triggered re-profiling (None = off, the single-run default;
    /// the serve mode enables it per tenant).
    pub drift: Option<OnlineDriftConfig>,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            env: EnvConfig::default(),
            eval_every_deaths: 64,
            shutoff_below_potential: None,
            confirm_evals: 2,
            min_potential_bytes: 0,
            drift: None,
        }
    }
}

/// Configuration of the per-run drift tracker.
#[derive(Debug, Clone, Copy)]
pub struct OnlineDriftConfig {
    /// Flag a series when its newest-half mean exceeds its oldest-half
    /// mean by at least this percentage (see [`SeriesStore::detect_drift`]).
    pub growth_pct: f64,
    /// Minimum retained points before a series is considered.
    pub min_points: usize,
    /// Retained points per series (bounded, peak-preserving downsampling).
    pub capacity: usize,
}

impl Default for OnlineDriftConfig {
    fn default() -> Self {
        OnlineDriftConfig {
            growth_pct: 100.0,
            min_points: 4,
            capacity: 64,
        }
    }
}

/// Why an online run could not start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnlineError {
    /// The supplied environment was built with `profiling: false`; online
    /// mode needs the profiler to aggregate death statistics between
    /// evaluations.
    NotProfiling,
}

impl std::fmt::Display for OnlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnlineError::NotProfiling => write!(
                f,
                "online mode requires a profiling environment (set `profiling: true` in EnvConfig)"
            ),
        }
    }
}

impl std::error::Error for OnlineError {}

/// Outcome of an online run.
#[derive(Debug)]
pub struct OnlineResult {
    /// Run metrics (including every capture's cost).
    pub metrics: RunMetrics,
    /// How many rule re-evaluations happened.
    pub evaluations: u64,
    /// How many policy overrides were installed in total.
    pub replacements: u64,
    /// How many installed overrides were reverted to the default.
    pub reverts: u64,
    /// How many drift-triggered re-profilings fired.
    pub drift_events: u64,
    /// The final profile report.
    pub report: ProfileReport,
    /// The converged replacement policy, portably keyed by context frames
    /// (re-appliable to a fresh environment).
    pub converged_policy: Vec<PortableUpdate>,
}

/// A hysteresis key: one (collection kind, context) policy slot. The kind
/// tag keeps the three policy namespaces (list/set/map) apart.
type HKey = (u8, ContextId);

fn hkey(u: &PolicyUpdate) -> HKey {
    match u {
        PolicyUpdate::List(c, _) => (0, *c),
        PolicyUpdate::Set(c, _) => (1, *c),
        PolicyUpdate::Map(c, _) => (2, *c),
    }
}

/// What an evaluation wants a policy slot to hold.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Desired {
    /// No override: the context gets its requested default.
    Default,
    /// This concrete override.
    Update(PolicyUpdate),
}

#[derive(Debug)]
struct KeyState {
    /// What the factory policy currently holds for this slot.
    installed: Desired,
    /// The pending change (None = the slot agrees with `installed`).
    candidate: Option<Desired>,
    /// Consecutive evaluations the candidate has won.
    wins: u64,
    /// Installed switches so far (installs + reverts).
    switches: u64,
}

impl Default for KeyState {
    fn default() -> Self {
        KeyState {
            installed: Desired::Default,
            candidate: None,
            wins: 0,
            switches: 0,
        }
    }
}

/// Per-evaluation outcome of a hysteresis step.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct HysteresisStep {
    /// Overrides installed this evaluation.
    pub installs: u64,
    /// Overrides reverted to the default this evaluation.
    pub reverts: u64,
}

/// The anti-oscillation state machine: one [`KeyState`] per policy slot,
/// advanced once per rule evaluation by [`Hysteresis::observe`].
#[derive(Debug)]
pub(crate) struct Hysteresis {
    confirm: u64,
    keys: BTreeMap<HKey, KeyState>,
}

impl Hysteresis {
    pub(crate) fn new(confirm_evals: u64) -> Self {
        Hysteresis {
            confirm: confirm_evals.max(1),
            keys: BTreeMap::new(),
        }
    }

    /// Advances every policy slot one evaluation: `desired` is the set of
    /// overrides this evaluation's suggestions want (already gated on
    /// auto-applicability and the potential floor). A slot whose desired
    /// state differs from its installed state accumulates consecutive
    /// wins; at `confirm` wins the change is applied to `policy`. Any
    /// change of candidate — including the desired set agreeing with the
    /// installed state again — re-arms the counter from scratch.
    pub(crate) fn observe(
        &mut self,
        desired: &BTreeMap<HKey, PolicyUpdate>,
        policy: &mut SelectionPolicy,
    ) -> HysteresisStep {
        // Visit the union of desired slots and slots holding an override
        // or a pending candidate (an installed-but-no-longer-desired slot
        // is a revert candidate; a pending candidate that the profile no
        // longer wants must lose its streak this evaluation, not keep it
        // frozen until the desire reappears).
        let slots: Vec<HKey> = desired
            .keys()
            .copied()
            .chain(
                self.keys
                    .iter()
                    .filter(|(_, ks)| ks.installed != Desired::Default || ks.candidate.is_some())
                    .map(|(k, _)| *k),
            )
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut step = HysteresisStep::default();
        for k in slots {
            let want = desired
                .get(&k)
                .copied()
                .map(Desired::Update)
                .unwrap_or(Desired::Default);
            let ks = self.keys.entry(k).or_default();
            if want == ks.installed {
                ks.candidate = None;
                ks.wins = 0;
                continue;
            }
            if ks.candidate == Some(want) {
                ks.wins += 1;
            } else {
                ks.candidate = Some(want);
                ks.wins = 1;
            }
            if ks.wins < self.confirm {
                continue;
            }
            match want {
                Desired::Update(PolicyUpdate::List(c, sel)) => {
                    policy.set_list(c, sel);
                    step.installs += 1;
                }
                Desired::Update(PolicyUpdate::Set(c, sel)) => {
                    policy.set_set(c, sel);
                    step.installs += 1;
                }
                Desired::Update(PolicyUpdate::Map(c, sel)) => {
                    policy.set_map(c, sel);
                    step.installs += 1;
                }
                Desired::Default => {
                    match k.0 {
                        0 => drop(policy.clear_list(k.1)),
                        1 => drop(policy.clear_set(k.1)),
                        _ => drop(policy.clear_map(k.1)),
                    }
                    step.reverts += 1;
                }
            }
            ks.installed = want;
            ks.candidate = None;
            ks.wins = 0;
            ks.switches += 1;
        }
        step
    }

    /// Re-arms every pending candidate (drift: the evidence it was
    /// accumulating came from the previous phase). Installed overrides
    /// stay; fresh evidence either re-confirms or reverts them.
    pub(crate) fn rearm(&mut self) {
        for ks in self.keys.values_mut() {
            ks.candidate = None;
            ks.wins = 0;
        }
    }

    /// Every installed override, ordered by slot key.
    pub(crate) fn installed_updates(&self) -> Vec<PolicyUpdate> {
        self.keys
            .values()
            .filter_map(|ks| match ks.installed {
                Desired::Update(u) => Some(u),
                Desired::Default => None,
            })
            .collect()
    }

    /// Per-slot switch counts (kind tag, context, switches), ordered by
    /// slot key, slots that never switched omitted.
    pub(crate) fn switch_counts(&self) -> Vec<(u8, ContextId, u64)> {
        self.keys
            .iter()
            .filter(|(_, ks)| ks.switches > 0)
            .map(|(&(kind, ctx), ks)| (kind, ctx, ks.switches))
            .collect()
    }

    /// The largest per-slot switch count (0 = nothing ever switched).
    pub(crate) fn max_switches(&self) -> u64 {
        self.keys.values().map(|ks| ks.switches).max().unwrap_or(0)
    }
}

/// Per-type drift tracker: one death-rate series and one potential-delta
/// series per requested type, sampled once per evaluation.
#[derive(Debug)]
struct DriftTracker {
    cfg: OnlineDriftConfig,
    series: SeriesStore,
    /// Stable per-type series keys: type → base key (base = death rate,
    /// base + 1 = potential delta).
    type_keys: BTreeMap<String, u64>,
    prev_deaths: BTreeMap<String, u64>,
    prev_potential: BTreeMap<String, u64>,
    /// Evaluation ordinal within the current phase (series cycle).
    ticks: u64,
}

impl DriftTracker {
    fn new(cfg: OnlineDriftConfig) -> Self {
        DriftTracker {
            cfg,
            series: SeriesStore::new(cfg.capacity),
            type_keys: BTreeMap::new(),
            prev_deaths: BTreeMap::new(),
            prev_potential: BTreeMap::new(),
            ticks: 0,
        }
    }

    /// Samples this evaluation's report; returns true when a phase shift
    /// was detected (and resets itself for the new phase).
    fn observe(&mut self, report: &ProfileReport) -> bool {
        let mut deaths: BTreeMap<&str, u64> = BTreeMap::new();
        let mut potential: BTreeMap<&str, u64> = BTreeMap::new();
        for c in &report.contexts {
            *deaths.entry(c.src_type.as_str()).or_insert(0) += c.trace.instances;
            *potential.entry(c.src_type.as_str()).or_insert(0) += c.potential_bytes;
        }
        let t = self.ticks;
        self.ticks += 1;
        for (&ty, &total) in &deaths {
            let base = match self.type_keys.get(ty) {
                Some(&k) => k,
                None => {
                    let k = (self.type_keys.len() as u64) * 2;
                    self.type_keys.insert(ty.to_owned(), k);
                    k
                }
            };
            if !self.prev_deaths.contains_key(ty) {
                // A type first seen at tick `t` was silent before; without
                // the zero backfill its series would start flat-high and a
                // quiet-then-hot type could never register as drift.
                for c in 0..t {
                    self.series.push(base, c, 0);
                    self.series.push(base + 1, c, 0);
                }
            }
            let d_rate = total.saturating_sub(self.prev_deaths.get(ty).copied().unwrap_or(0));
            let p_delta =
                potential[ty].saturating_sub(self.prev_potential.get(ty).copied().unwrap_or(0));
            self.series.push(base, t, d_rate);
            self.series.push(base + 1, t, p_delta);
            self.prev_deaths.insert(ty.to_owned(), total);
            self.prev_potential.insert(ty.to_owned(), potential[ty]);
        }
        let findings = self.series.detect_drift(&DriftConfig {
            growth_pct: self.cfg.growth_pct,
            min_points: self.cfg.min_points,
        });
        if findings.is_empty() {
            return false;
        }
        // Phase shift: restart the series (and the delta baselines — the
        // profiler is reset right after, so cumulative totals restart too)
        // so steady post-shift behaviour does not re-fire every evaluation.
        self.series = SeriesStore::new(self.cfg.capacity);
        self.prev_deaths.clear();
        self.prev_potential.clear();
        self.ticks = 0;
        true
    }
}

/// Everything an evaluation mutates under one lock, so concurrent death
/// deliveries advance the state machine atomically.
struct AdaptState {
    hysteresis: Hysteresis,
    drift: Option<DriftTracker>,
}

/// The online sink: aggregates deaths into the profiler and re-evaluates
/// the rules on a fixed death cadence. Shared with `core::serve`, which
/// drives one sink per tenant.
pub(crate) struct OnlineSink {
    profiler: Arc<Profiler>,
    heap: Heap,
    engine: Arc<RuleEngine>,
    policy: Arc<Mutex<SelectionPolicy>>,
    capture: CaptureController,
    deaths: AtomicU64,
    every: u64,
    evaluations: AtomicU64,
    replacements: AtomicU64,
    reverts: AtomicU64,
    drift_events: AtomicU64,
    min_potential: u64,
    shutoff: Option<u64>,
    state: Mutex<AdaptState>,
}

impl OnlineSink {
    /// Builds a sink bound to `env`'s profiler, policy and capture state.
    /// Fails when the environment does not profile — online adaptation
    /// cannot evaluate rules without death aggregates.
    pub(crate) fn new(
        env: &Env,
        engine: Arc<RuleEngine>,
        config: &OnlineConfig,
    ) -> Result<Arc<OnlineSink>, OnlineError> {
        let Some(profiler) = env.profiler.clone() else {
            return Err(OnlineError::NotProfiling);
        };
        Ok(Arc::new(OnlineSink {
            profiler,
            heap: env.heap.clone(),
            engine,
            policy: env.factory.policy(),
            capture: env.factory.capture_controller(),
            deaths: AtomicU64::new(0),
            every: config.eval_every_deaths.max(1),
            evaluations: AtomicU64::new(0),
            replacements: AtomicU64::new(0),
            reverts: AtomicU64::new(0),
            drift_events: AtomicU64::new(0),
            min_potential: config.min_potential_bytes,
            shutoff: config.shutoff_below_potential,
            state: Mutex::new(AdaptState {
                hysteresis: Hysteresis::new(config.confirm_evals),
                drift: config.drift.map(DriftTracker::new),
            }),
        }))
    }

    pub(crate) fn death_total(&self) -> u64 {
        self.deaths.load(Ordering::Relaxed)
    }

    pub(crate) fn evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    pub(crate) fn replacements(&self) -> u64 {
        self.replacements.load(Ordering::Relaxed)
    }

    pub(crate) fn reverts(&self) -> u64 {
        self.reverts.load(Ordering::Relaxed)
    }

    pub(crate) fn drift_events(&self) -> u64 {
        self.drift_events.load(Ordering::Relaxed)
    }

    pub(crate) fn disabled_types(&self) -> Vec<String> {
        self.capture.disabled_types()
    }

    /// Every installed override, ordered by policy slot.
    pub(crate) fn installed_updates(&self) -> Vec<PolicyUpdate> {
        self.state.lock().hysteresis.installed_updates()
    }

    /// Per-slot switch counts (kind tag, context, switches).
    pub(crate) fn switch_counts(&self) -> Vec<(u8, ContextId, u64)> {
        self.state.lock().hysteresis.switch_counts()
    }

    /// The largest per-slot switch count.
    pub(crate) fn max_switches(&self) -> u64 {
        self.state.lock().hysteresis.max_switches()
    }

    /// One rule re-evaluation: build the report, apply the §4.2 shutoff,
    /// sample the drift tracker, then advance the hysteresis machine.
    fn evaluate(&self) {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        let report = ProfileReport::build(&self.profiler, &self.heap);

        // §4.2 per-type shutoff: if every context of a requested type shows
        // negligible potential, stop paying capture cost for that type.
        if let Some(floor) = self.shutoff {
            use std::collections::HashMap;
            let mut by_type: HashMap<&str, u64> = HashMap::new();
            for c in &report.contexts {
                *by_type.entry(c.src_type.as_str()).or_insert(0) += c.potential_bytes;
            }
            // hashmap-iter-ok: each type is judged against the floor
            // independently; visit order cannot change which are disabled.
            for (ty, potential) in by_type {
                if potential < floor {
                    self.capture.disable_tracking_for(ty);
                }
            }
        }

        let mut st = self.state.lock();
        if let Some(tracker) = st.drift.as_mut() {
            if tracker.observe(&report) {
                self.drift_events.fetch_add(1, Ordering::Relaxed);
                // The tenant changed phase: what was learned about quiet
                // types no longer holds. Re-enable capture for every
                // shut-off type, restart profiling aggregation, and re-arm
                // the hysteresis counters (installed overrides stay; fresh
                // evidence re-confirms or reverts them).
                for ty in self.capture.disabled_types() {
                    self.capture.enable_tracking_for(&ty);
                }
                self.profiler.reset();
                st.hysteresis.rearm();
                // The desired set below would be computed from the stale
                // (pre-shift) profile; skip this evaluation's installs.
                return;
            }
        }

        // The desired policy for this evaluation. Mid-run installation is
        // gated exactly like the converged policy: only `auto_applicable`
        // suggestions (policy_update() is Some) that clear the potential
        // floor become candidates.
        let suggestions = self.engine.evaluate(&report);
        let mut desired: BTreeMap<HKey, PolicyUpdate> = BTreeMap::new();
        for s in &suggestions {
            if s.potential_bytes < self.min_potential {
                continue;
            }
            let Some(u) = s.policy_update() else { continue };
            desired.insert(hkey(&u), u);
        }

        let mut policy = self.policy.lock();
        let step = st.hysteresis.observe(&desired, &mut policy);
        self.replacements
            .fetch_add(step.installs, Ordering::Relaxed);
        self.reverts.fetch_add(step.reverts, Ordering::Relaxed);
    }
}

impl StatsSink for OnlineSink {
    fn on_death(&self, ctx: Option<ContextId>, stats: &InstanceStats) {
        self.profiler.on_death(ctx, stats);
        let n = self.deaths.fetch_add(1, Ordering::Relaxed) + 1;
        if !n.is_multiple_of(self.every) {
            return;
        }
        self.evaluate();
    }
}

/// Runs `workload` in fully-automatic mode.
///
/// Fails with [`OnlineError::NotProfiling`] when `config.env` disables
/// profiling — online mode cannot evaluate rules without the profiler's
/// aggregates. (This used to panic; callers such as the CLI now surface a
/// one-line error instead.)
pub fn run_online(
    workload: &dyn Workload,
    engine: Arc<RuleEngine>,
    config: &OnlineConfig,
) -> Result<OnlineResult, OnlineError> {
    let env = Env::new(&config.env);
    let sink = OnlineSink::new(&env, engine, config)?;
    env.rt.set_sink(sink.clone());

    env.run(workload);

    let report = ProfileReport::build(&sink.profiler, &env.heap);
    let converged: Vec<_> = sink
        .engine
        .evaluate(&report)
        .into_iter()
        .filter(|s| s.auto_applicable())
        .collect();
    let converged_policy = portable_updates(&converged, &env.heap);

    Ok(OnlineResult {
        metrics: env.metrics(),
        evaluations: sink.evaluations(),
        replacements: sink.replacements(),
        reverts: sink.reverts(),
        drift_events: sink.drift_events(),
        report,
        converged_policy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_collections::factory::{CaptureConfig, CaptureMethod, MapChoice, Selection};
    use chameleon_collections::CollectionFactory;

    /// Allocates waves of small maps; later waves should come out as
    /// ArrayMaps once the engine has seen enough deaths.
    fn waves() -> impl Workload {
        ("waves", |f: &CollectionFactory| {
            let _g = f.enter("wave.Site:5");
            for _ in 0..300 {
                let mut m = f.new_map::<i64, i64>(None);
                for i in 0..4 {
                    m.put(i, i);
                }
            }
        })
    }

    #[test]
    fn online_mode_replaces_mid_run() {
        let result = run_online(
            &waves(),
            Arc::new(RuleEngine::builtin()),
            &OnlineConfig {
                eval_every_deaths: 50,
                ..OnlineConfig::default()
            },
        )
        .expect("online run");
        assert!(
            result.evaluations >= 2,
            "evaluations: {}",
            result.evaluations
        );
        // With the default hysteresis (confirm_evals = 2) the ArrayMap
        // suggestion wins evaluations 1 and 2 and installs at death 100 of
        // 300 — still mid-run.
        assert!(result.replacements >= 1);
        // The context's instances must show a mixture of implementations:
        // HashMap early, ArrayMap after the install.
        let ctx = &result.report.contexts[0];
        assert!(ctx.trace.impl_counts.contains_key("HashMap"), "{ctx:?}");
        assert!(ctx.trace.impl_counts.contains_key("ArrayMap"), "{ctx:?}");
        // A stable profile never flips back: no reverts.
        assert_eq!(result.reverts, 0);
        assert_eq!(result.drift_events, 0, "drift is off by default");
    }

    #[test]
    fn per_type_shutoff_cuts_capture_cost() {
        // Two types churn: HashMaps with real potential, ArrayLists with
        // none. With the shutoff enabled, list captures stop after the
        // first evaluation.
        let two_types = ("two-types", |f: &CollectionFactory| {
            let _g = f.enter("shut.Site:1");
            for _ in 0..400 {
                let mut m = f.new_map::<i64, i64>(None);
                m.put(1, 1);
                let mut l = f.new_list::<i64>(Some(2));
                l.add(1);
                l.add(2);
                let _ = l.get(0);
            }
        });
        let run = |shutoff| {
            let cfg = OnlineConfig {
                eval_every_deaths: 100,
                shutoff_below_potential: shutoff,
                ..OnlineConfig::default()
            };
            run_online(&two_types, Arc::new(RuleEngine::builtin()), &cfg)
                .expect("online run")
                .metrics
                .capture_count
        };
        let without = run(None);
        let with = run(Some(1_000_000_000)); // absurd floor: everything shuts off
        assert!(
            with < without / 2,
            "shutoff must cut captures: {with} vs {without}"
        );
    }

    #[test]
    fn capture_cost_dominates_online_overhead() {
        // Same workload, capture on vs off: the §5.4 overhead shape.
        let run = |method: CaptureMethod| {
            let cfg = OnlineConfig {
                env: EnvConfig {
                    capture: CaptureConfig {
                        method,
                        ..CaptureConfig::default()
                    },
                    ..EnvConfig::default()
                },
                eval_every_deaths: u64::MAX, // no evaluations: isolate capture
                ..OnlineConfig::default()
            };
            run_online(&waves(), Arc::new(RuleEngine::builtin()), &cfg)
                .expect("online run")
                .metrics
                .sim_time
        };
        let with_capture = run(CaptureMethod::Jvmti);
        let without = run(CaptureMethod::None);
        assert!(
            with_capture as f64 > without as f64 * 1.2,
            "capture must cost >20% on an allocation-heavy run: {with_capture} vs {without}"
        );
    }

    #[test]
    fn misconfigured_env_is_an_error_not_a_panic() {
        // Regression: this used to hit an `.expect(..)` inside run_online.
        let cfg = OnlineConfig {
            env: EnvConfig {
                profiling: false,
                ..EnvConfig::default()
            },
            ..OnlineConfig::default()
        };
        let err = run_online(&waves(), Arc::new(RuleEngine::builtin()), &cfg)
            .expect_err("non-profiling env must be rejected");
        assert_eq!(err, OnlineError::NotProfiling);
        assert!(err.to_string().contains("profiling"), "{err}");
    }

    #[test]
    fn sink_counters_are_exact_under_parallel_mutators() {
        use chameleon_collections::OpCounts;

        // Hammer the sink's death counter and evaluation cadence from many
        // threads: every `every`-th death triggers exactly one evaluation,
        // no matter how the threads interleave.
        let env = Env::new(&EnvConfig::default());
        let sink = OnlineSink::new(
            &env,
            Arc::new(RuleEngine::builtin()),
            &OnlineConfig {
                eval_every_deaths: 16,
                ..OnlineConfig::default()
            },
        )
        .expect("profiling env");

        const THREADS: u64 = 4;
        const DEATHS_PER_THREAD: u64 = 400;
        let stats = InstanceStats {
            ops: OpCounts::default(),
            max_size: 3,
            final_size: 3,
            initial_capacity: 10,
            requested_type: "ArrayList",
            chosen_impl: "ArrayList",
            survivor: false,
        };
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..DEATHS_PER_THREAD {
                        sink.on_death(None, &stats);
                    }
                });
            }
        });

        let total = THREADS * DEATHS_PER_THREAD;
        assert_eq!(sink.death_total(), total);
        assert_eq!(sink.profiler.death_count(), total);
        assert_eq!(sink.evaluations(), total / 16);
    }

    #[test]
    fn advisory_suggestions_never_install_mid_run() {
        // Regression (mid-run/converged gate mismatch): an engine whose
        // only rule is advisory must never touch the policy while the
        // program runs — exactly like the converged policy, which filters
        // to `auto_applicable()`.
        let mut engine = RuleEngine::new();
        engine
            .add_rules(r#"HashMap : maxSize > 0 -> Eliminate "Space: advisory only";"#)
            .expect("rule parses");
        let result = run_online(
            &waves(),
            Arc::new(engine),
            &OnlineConfig {
                eval_every_deaths: 50,
                confirm_evals: 1, // even with hysteresis off, the gate holds
                ..OnlineConfig::default()
            },
        )
        .expect("online run");
        assert!(result.evaluations >= 2, "the rule did evaluate");
        assert_eq!(result.replacements, 0, "advisory rules install nothing");
        assert!(result.converged_policy.is_empty());
        let ctx = &result.report.contexts[0];
        assert_eq!(ctx.trace.impl_counts.len(), 1, "{ctx:?}");
        assert!(ctx.trace.impl_counts.contains_key("HashMap"), "{ctx:?}");
    }

    #[test]
    fn suggestions_below_the_potential_floor_are_ignored() {
        // waves() produces a real ArrayMap suggestion; an absurd
        // confidence floor keeps it from ever becoming a candidate.
        let result = run_online(
            &waves(),
            Arc::new(RuleEngine::builtin()),
            &OnlineConfig {
                eval_every_deaths: 50,
                min_potential_bytes: u64::MAX,
                ..OnlineConfig::default()
            },
        )
        .expect("online run");
        assert!(result.evaluations >= 2);
        assert_eq!(result.replacements, 0);
        let ctx = &result.report.contexts[0];
        assert_eq!(ctx.trace.impl_counts.len(), 1, "{ctx:?}");
    }

    // ----- hysteresis state machine -----------------------------------------

    fn update_a() -> PolicyUpdate {
        PolicyUpdate::Map(
            ContextId(7),
            Selection {
                choice: MapChoice::ArrayMap,
                capacity: Some(4),
            },
        )
    }

    fn update_b() -> PolicyUpdate {
        PolicyUpdate::Map(
            ContextId(7),
            Selection {
                choice: MapChoice::LazyMap,
                capacity: None,
            },
        )
    }

    fn desired(updates: &[PolicyUpdate]) -> BTreeMap<HKey, PolicyUpdate> {
        updates.iter().map(|u| (hkey(u), *u)).collect()
    }

    #[test]
    fn hysteresis_installs_at_exactly_k_wins() {
        let mut policy = SelectionPolicy::new();
        let mut h = Hysteresis::new(3);
        let want = desired(&[update_a()]);
        // K-1 consecutive wins: nothing installed.
        for _ in 0..2 {
            let step = h.observe(&want, &mut policy);
            assert_eq!(step, HysteresisStep::default());
            assert!(policy.is_empty());
        }
        // The K-th win installs.
        let step = h.observe(&want, &mut policy);
        assert_eq!(step.installs, 1);
        assert_eq!(policy.len(), 1);
        assert_eq!(h.installed_updates(), vec![update_a()]);
        assert_eq!(h.max_switches(), 1);
        // Steady state: no further switches.
        let step = h.observe(&want, &mut policy);
        assert_eq!(step, HysteresisStep::default());
        assert_eq!(h.max_switches(), 1);
    }

    #[test]
    fn confirm_one_installs_immediately() {
        let mut policy = SelectionPolicy::new();
        let mut h = Hysteresis::new(1);
        let step = h.observe(&desired(&[update_a()]), &mut policy);
        assert_eq!(step.installs, 1);
        assert_eq!(policy.len(), 1);
    }

    #[test]
    fn reversal_rearms_the_counter() {
        let mut policy = SelectionPolicy::new();
        let mut h = Hysteresis::new(3);
        let want_a = desired(&[update_a()]);
        let empty = BTreeMap::new();
        for _ in 0..3 {
            h.observe(&want_a, &mut policy);
        }
        assert_eq!(policy.len(), 1, "A installed");
        // The reversal wins K-1 evaluations ...
        for _ in 0..2 {
            let step = h.observe(&empty, &mut policy);
            assert_eq!(step.reverts, 0);
        }
        // ... then A re-appears: the revert counter must re-arm.
        h.observe(&want_a, &mut policy);
        assert_eq!(policy.len(), 1, "A still installed");
        // K-1 more reversal wins are NOT enough (the streak restarted).
        for _ in 0..2 {
            let step = h.observe(&empty, &mut policy);
            assert_eq!(step.reverts, 0);
            assert_eq!(policy.len(), 1);
        }
        // The K-th consecutive reversal win finally clears the override.
        let step = h.observe(&empty, &mut policy);
        assert_eq!(step.reverts, 1);
        assert!(policy.is_empty());
        assert_eq!(h.installed_updates(), Vec::<PolicyUpdate>::new());
        assert_eq!(h.max_switches(), 2, "one install + one revert");
    }

    #[test]
    fn alternating_profiles_converge_without_flapping() {
        // A flap-prone profile alternates between wanting the override and
        // wanting the default on every evaluation. With K = 2 the
        // candidate never wins twice in a row: zero switches, ever.
        let mut policy = SelectionPolicy::new();
        let mut h = Hysteresis::new(2);
        let want_a = desired(&[update_a()]);
        let empty = BTreeMap::new();
        for i in 0..40 {
            let want = if i % 2 == 0 { &want_a } else { &empty };
            let step = h.observe(want, &mut policy);
            assert_eq!(step, HysteresisStep::default(), "eval {i} switched");
        }
        assert!(policy.is_empty());
        assert_eq!(h.max_switches(), 0);

        // Same for a profile that alternates between two different
        // overrides for the same slot: the candidate changes every
        // evaluation, so its streak never reaches K.
        let mut h = Hysteresis::new(2);
        let want_b = desired(&[update_b()]);
        for i in 0..40 {
            let want = if i % 2 == 0 { &want_a } else { &want_b };
            let step = h.observe(want, &mut policy);
            assert_eq!(step, HysteresisStep::default(), "eval {i} switched");
        }
        assert_eq!(h.max_switches(), 0);

        // Once the profile settles, the winner installs after K evals —
        // exactly one switch for the whole (alternating + settled) phase.
        for _ in 0..2 {
            h.observe(&want_a, &mut policy);
        }
        assert_eq!(policy.len(), 1);
        assert_eq!(h.max_switches(), 1, "at most one switch per phase");
    }

    #[test]
    fn rearm_preserves_installed_overrides_but_drops_candidates() {
        let mut policy = SelectionPolicy::new();
        let mut h = Hysteresis::new(2);
        let want_a = desired(&[update_a()]);
        for _ in 0..2 {
            h.observe(&want_a, &mut policy);
        }
        assert_eq!(policy.len(), 1);
        // A reversal candidate accumulates one win, then drift re-arms.
        h.observe(&BTreeMap::new(), &mut policy);
        h.rearm();
        // One more reversal win is a fresh streak of 1: not enough.
        let step = h.observe(&BTreeMap::new(), &mut policy);
        assert_eq!(step.reverts, 0);
        assert_eq!(policy.len(), 1, "installed override survives rearm");
        // The second consecutive win after the rearm reverts.
        let step = h.observe(&BTreeMap::new(), &mut policy);
        assert_eq!(step.reverts, 1);
        assert!(policy.is_empty());
    }

    // ----- drift-triggered re-profiling --------------------------------------

    #[test]
    fn drift_reenables_shutoff_capture_for_quiet_then_hot_type() {
        // §4.2 shutoff used to be permanent: a type that is quiet early was
        // shut off and could never recover. With the drift trigger, the
        // phase shift re-enables tracking and the hot contexts surface.
        let quiet_then_hot = ("quiet-then-hot", |f: &CollectionFactory| {
            let heap = f.runtime().heap().clone();
            // Phase 1 (map-heavy): 300 sparse maps held live across a GC
            // so the HashMap type shows real potential; 10 quiet lists
            // with none. The first evaluation shuts ArrayList capture off.
            let mut keep = Vec::new();
            {
                let _g = f.enter("qh.Maps:1");
                for _ in 0..300 {
                    let mut m = f.new_map::<i64, i64>(None);
                    m.put(1, 1);
                    keep.push(m);
                }
            }
            {
                let _g = f.enter("qh.QuietList:2");
                for _ in 0..10 {
                    let mut l = f.new_list::<i64>(None);
                    l.add(1);
                }
            }
            heap.gc();
            drop(keep);
            // Phase 2 (list-heavy): the lists turn hot. Without the drift
            // trigger every one of these dies uncaptured.
            let _g = f.enter("qh.HotList:3");
            for _ in 0..300 {
                let mut l = f.new_list::<i64>(None);
                for i in 0..64 {
                    l.add(i);
                }
            }
        });
        let run = |drift: Option<OnlineDriftConfig>| {
            run_online(
                &quiet_then_hot,
                Arc::new(RuleEngine::builtin()),
                &OnlineConfig {
                    eval_every_deaths: 50,
                    shutoff_below_potential: Some(1),
                    drift,
                    ..OnlineConfig::default()
                },
            )
            .expect("online run")
        };

        // Control: permanent shutoff. The hot-list context never exists.
        let control = run(None);
        assert_eq!(control.drift_events, 0);
        assert!(
            !control
                .report
                .contexts
                .iter()
                .any(|c| c.label.contains("qh.HotList")),
            "without drift the hot lists stay uncaptured"
        );

        // With drift: the phase shift fires, capture is re-enabled, and
        // the hot context is profiled (and suggested on) again.
        let adapted = run(Some(OnlineDriftConfig::default()));
        assert!(adapted.drift_events >= 1, "{:?}", adapted.drift_events);
        let hot = adapted
            .report
            .contexts
            .iter()
            .find(|c| c.label.contains("qh.HotList"))
            .expect("hot-list context captured after drift re-enable");
        assert!(hot.trace.instances > 0);
        assert!(
            adapted
                .converged_policy
                .iter()
                .any(|u| u.src_type == "ArrayList"),
            "the recovered type converges to a policy update: {:?}",
            adapted.converged_policy
        );
    }
}
