//! Fully-automatic online replacement mode (§3.3.2, §5.4).
//!
//! Replacements happen *while the program runs*: the profiler keeps
//! aggregating, and every `eval_every_deaths` collection deaths the rule
//! engine re-evaluates the current profile and installs policy updates —
//! which take effect at subsequent allocations ("switching is localized as
//! it occurs when a collection object is allocated", §6). The run pays the
//! context-capture cost on every allocation, which is exactly the §5.4
//! bottleneck the paper measures (TVLA 35% slowdown, PMD 6×).

use crate::env::{portable_updates, Env, EnvConfig, PortableUpdate};
use crate::metrics::RunMetrics;
use crate::workload::Workload;
use chameleon_collections::factory::CaptureController;
use chameleon_collections::runtime::{InstanceStats, StatsSink};
use chameleon_collections::SelectionPolicy;
use chameleon_heap::{ContextId, Heap};
use chameleon_profiler::{ProfileReport, Profiler};
use chameleon_rules::{PolicyUpdate, RuleEngine};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Online-mode configuration.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Environment for the run (capture should be enabled — that is the
    /// point of the experiment).
    pub env: EnvConfig,
    /// Re-evaluate rules every this many collection deaths.
    pub eval_every_deaths: u64,
    /// §4.2's per-type shutoff: after each evaluation, stop capturing
    /// contexts for requested types whose total observed potential is
    /// below this many bytes (None = never shut off).
    pub shutoff_below_potential: Option<u64>,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            env: EnvConfig::default(),
            eval_every_deaths: 64,
            shutoff_below_potential: None,
        }
    }
}

/// Why an online run could not start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnlineError {
    /// The supplied environment was built with `profiling: false`; online
    /// mode needs the profiler to aggregate death statistics between
    /// evaluations.
    NotProfiling,
}

impl std::fmt::Display for OnlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnlineError::NotProfiling => write!(
                f,
                "online mode requires a profiling environment (set `profiling: true` in EnvConfig)"
            ),
        }
    }
}

impl std::error::Error for OnlineError {}

/// Outcome of an online run.
#[derive(Debug)]
pub struct OnlineResult {
    /// Run metrics (including every capture's cost).
    pub metrics: RunMetrics,
    /// How many rule re-evaluations happened.
    pub evaluations: u64,
    /// How many policy overrides were installed in total.
    pub replacements: u64,
    /// The final profile report.
    pub report: ProfileReport,
    /// The converged replacement policy, portably keyed by context frames
    /// (re-appliable to a fresh environment).
    pub converged_policy: Vec<PortableUpdate>,
}

struct OnlineSink {
    profiler: Arc<Profiler>,
    heap: Heap,
    engine: Arc<RuleEngine>,
    policy: Arc<Mutex<SelectionPolicy>>,
    capture: CaptureController,
    deaths: AtomicU64,
    every: u64,
    evaluations: AtomicU64,
    replacements: AtomicU64,
    shutoff_below_potential: Option<u64>,
}

impl StatsSink for OnlineSink {
    fn on_death(&self, ctx: Option<ContextId>, stats: &InstanceStats) {
        self.profiler.on_death(ctx, stats);
        let n = self.deaths.fetch_add(1, Ordering::Relaxed) + 1;
        if !n.is_multiple_of(self.every) {
            return;
        }
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        let report = ProfileReport::build(&self.profiler, &self.heap);

        // §4.2 per-type shutoff: if every context of a requested type shows
        // negligible potential, stop paying capture cost for that type.
        if let Some(floor) = self.shutoff_below_potential {
            use std::collections::HashMap;
            let mut by_type: HashMap<&str, u64> = HashMap::new();
            for c in &report.contexts {
                *by_type.entry(c.src_type.as_str()).or_insert(0) += c.potential_bytes;
            }
            // hashmap-iter-ok: each type is judged against the floor
            // independently; visit order cannot change which are disabled.
            for (ty, potential) in by_type {
                if potential < floor {
                    self.capture.disable_tracking_for(ty);
                }
            }
        }

        let suggestions = self.engine.evaluate(&report);
        let mut policy = self.policy.lock();
        for s in &suggestions {
            match s.policy_update() {
                Some(PolicyUpdate::List(c, sel)) => {
                    policy.set_list(c, sel);
                    self.replacements.fetch_add(1, Ordering::Relaxed);
                }
                Some(PolicyUpdate::Set(c, sel)) => {
                    policy.set_set(c, sel);
                    self.replacements.fetch_add(1, Ordering::Relaxed);
                }
                Some(PolicyUpdate::Map(c, sel)) => {
                    policy.set_map(c, sel);
                    self.replacements.fetch_add(1, Ordering::Relaxed);
                }
                None => {}
            }
        }
    }
}

/// Runs `workload` in fully-automatic mode.
///
/// Fails with [`OnlineError::NotProfiling`] when `config.env` disables
/// profiling — online mode cannot evaluate rules without the profiler's
/// aggregates. (This used to panic; callers such as the CLI now surface a
/// one-line error instead.)
pub fn run_online(
    workload: &dyn Workload,
    engine: Arc<RuleEngine>,
    config: &OnlineConfig,
) -> Result<OnlineResult, OnlineError> {
    let env = Env::new(&config.env);
    let Some(profiler) = env.profiler.clone() else {
        return Err(OnlineError::NotProfiling);
    };
    let sink = Arc::new(OnlineSink {
        profiler: profiler.clone(),
        heap: env.heap.clone(),
        engine,
        policy: env.factory.policy(),
        capture: env.factory.capture_controller(),
        deaths: AtomicU64::new(0),
        every: config.eval_every_deaths.max(1),
        evaluations: AtomicU64::new(0),
        replacements: AtomicU64::new(0),
        shutoff_below_potential: config.shutoff_below_potential,
    });
    env.rt.set_sink(sink.clone());

    env.run(workload);

    let report = ProfileReport::build(&profiler, &env.heap);
    let converged: Vec<_> = sink
        .engine
        .evaluate(&report)
        .into_iter()
        .filter(|s| s.auto_applicable())
        .collect();
    let converged_policy = portable_updates(&converged, &env.heap);

    Ok(OnlineResult {
        metrics: env.metrics(),
        evaluations: sink.evaluations.load(Ordering::Relaxed),
        replacements: sink.replacements.load(Ordering::Relaxed),
        report,
        converged_policy,
    })
}

/// Convenience: drives `factory` through `workload` twice is *not* done
/// here — online mode is single-run by design. See
/// [`run_experiment`](crate::experiment::run_experiment) for the offline
/// two-run methodology.
#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_collections::factory::{CaptureConfig, CaptureMethod};
    use chameleon_collections::CollectionFactory;

    /// Allocates waves of small maps; later waves should come out as
    /// ArrayMaps once the engine has seen enough deaths.
    fn waves() -> impl Workload {
        ("waves", |f: &CollectionFactory| {
            let _g = f.enter("wave.Site:5");
            for _ in 0..300 {
                let mut m = f.new_map::<i64, i64>(None);
                for i in 0..4 {
                    m.put(i, i);
                }
            }
        })
    }

    #[test]
    fn online_mode_replaces_mid_run() {
        let result = run_online(
            &waves(),
            Arc::new(RuleEngine::builtin()),
            &OnlineConfig {
                eval_every_deaths: 50,
                ..OnlineConfig::default()
            },
        )
        .expect("online run");
        assert!(
            result.evaluations >= 2,
            "evaluations: {}",
            result.evaluations
        );
        assert!(result.replacements >= 1);
        // The context's instances must show a mixture of implementations:
        // HashMap early, ArrayMap after the first evaluation.
        let ctx = &result.report.contexts[0];
        assert!(ctx.trace.impl_counts.contains_key("HashMap"), "{ctx:?}");
        assert!(ctx.trace.impl_counts.contains_key("ArrayMap"), "{ctx:?}");
    }

    #[test]
    fn per_type_shutoff_cuts_capture_cost() {
        // Two types churn: HashMaps with real potential, ArrayLists with
        // none. With the shutoff enabled, list captures stop after the
        // first evaluation.
        let two_types = ("two-types", |f: &CollectionFactory| {
            let _g = f.enter("shut.Site:1");
            for _ in 0..400 {
                let mut m = f.new_map::<i64, i64>(None);
                m.put(1, 1);
                let mut l = f.new_list::<i64>(Some(2));
                l.add(1);
                l.add(2);
                let _ = l.get(0);
            }
        });
        let run = |shutoff| {
            let cfg = OnlineConfig {
                eval_every_deaths: 100,
                shutoff_below_potential: shutoff,
                ..OnlineConfig::default()
            };
            run_online(&two_types, Arc::new(RuleEngine::builtin()), &cfg)
                .expect("online run")
                .metrics
                .capture_count
        };
        let without = run(None);
        let with = run(Some(1_000_000_000)); // absurd floor: everything shuts off
        assert!(
            with < without / 2,
            "shutoff must cut captures: {with} vs {without}"
        );
    }

    #[test]
    fn capture_cost_dominates_online_overhead() {
        // Same workload, capture on vs off: the §5.4 overhead shape.
        let run = |method: CaptureMethod| {
            let cfg = OnlineConfig {
                env: EnvConfig {
                    capture: CaptureConfig {
                        method,
                        ..CaptureConfig::default()
                    },
                    ..EnvConfig::default()
                },
                eval_every_deaths: u64::MAX, // no evaluations: isolate capture
                shutoff_below_potential: None,
            };
            run_online(&waves(), Arc::new(RuleEngine::builtin()), &cfg)
                .expect("online run")
                .metrics
                .sim_time
        };
        let with_capture = run(CaptureMethod::Jvmti);
        let without = run(CaptureMethod::None);
        assert!(
            with_capture as f64 > without as f64 * 1.2,
            "capture must cost >20% on an allocation-heavy run: {with_capture} vs {without}"
        );
    }

    #[test]
    fn misconfigured_env_is_an_error_not_a_panic() {
        // Regression: this used to hit an `.expect(..)` inside run_online.
        let cfg = OnlineConfig {
            env: EnvConfig {
                profiling: false,
                ..EnvConfig::default()
            },
            ..OnlineConfig::default()
        };
        let err = run_online(&waves(), Arc::new(RuleEngine::builtin()), &cfg)
            .expect_err("non-profiling env must be rejected");
        assert_eq!(err, OnlineError::NotProfiling);
        assert!(err.to_string().contains("profiling"), "{err}");
    }

    #[test]
    fn sink_counters_are_exact_under_parallel_mutators() {
        use chameleon_collections::OpCounts;

        // Hammer the sink's death counter and evaluation cadence from many
        // threads: every `every`-th death triggers exactly one evaluation,
        // no matter how the threads interleave.
        let env = Env::new(&EnvConfig::default());
        let profiler = env.profiler.clone().expect("profiling env");
        let sink = Arc::new(OnlineSink {
            profiler,
            heap: env.heap.clone(),
            engine: Arc::new(RuleEngine::builtin()),
            policy: env.factory.policy(),
            capture: env.factory.capture_controller(),
            deaths: AtomicU64::new(0),
            every: 16,
            evaluations: AtomicU64::new(0),
            replacements: AtomicU64::new(0),
            shutoff_below_potential: None,
        });

        const THREADS: u64 = 4;
        const DEATHS_PER_THREAD: u64 = 400;
        let stats = InstanceStats {
            ops: OpCounts::default(),
            max_size: 3,
            final_size: 3,
            initial_capacity: 10,
            requested_type: "ArrayList",
            chosen_impl: "ArrayList",
            survivor: false,
        };
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..DEATHS_PER_THREAD {
                        sink.on_death(None, &stats);
                    }
                });
            }
        });

        let total = THREADS * DEATHS_PER_THREAD;
        assert_eq!(sink.deaths.load(Ordering::Relaxed), total);
        assert_eq!(sink.profiler.death_count(), total);
        assert_eq!(sink.evaluations.load(Ordering::Relaxed), total / 16);
    }
}
