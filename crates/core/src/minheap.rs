//! Minimal-heap-size search.
//!
//! The paper evaluates space savings as "the minimal heap size required to
//! run the program" (§5.2): shrink the heap until the program throws
//! `OutOfMemoryError`. Here the simulated heap panics with an
//! [`OutOfMemory`] payload; the search runs
//! workload under a capacity via `catch_unwind` and binary-searches the
//! smallest capacity that completes.

use crate::env::{Env, EnvConfig, PortableUpdate};
use crate::workload::Workload;
use chameleon_heap::OutOfMemory;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// Granularity of the search in bytes.
pub const MIN_HEAP_STEP: u64 = 1024;

/// Installs (once per process) a panic hook that stays silent for the
/// simulated `OutOfMemoryError` — those panics are the expected signal of
/// the minimal-heap search — and delegates everything else to the previous
/// hook.
pub fn silence_oom_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<OutOfMemory>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Runs `workload` under `capacity` with `policy`; returns whether it
/// completed without OOM.
///
/// # Panics
///
/// Re-panics if the workload fails for any reason other than the simulated
/// `OutOfMemoryError`.
pub fn completes_under(workload: &dyn Workload, policy: &[PortableUpdate], capacity: u64) -> bool {
    completes_under_with(workload, policy, capacity, &EnvConfig::default())
}

/// [`completes_under`] with an environment template (layout model, cost
/// model and GC threads are taken from `template`; capacity, capture and
/// profiling follow the measured-run protocol).
pub fn completes_under_with(
    workload: &dyn Workload,
    policy: &[PortableUpdate],
    capacity: u64,
    template: &EnvConfig,
) -> bool {
    silence_oom_panics();
    let env = Env::new(&EnvConfig {
        model: template.model,
        cost: template.cost,
        gc_threads: template.gc_threads,
        ..EnvConfig::measured(capacity)
    });
    env.apply_policy(policy);
    let result = catch_unwind(AssertUnwindSafe(|| env.run(workload)));
    match result {
        Ok(()) => true,
        Err(payload) => {
            if payload.downcast_ref::<OutOfMemory>().is_some() {
                false
            } else {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Binary-searches the minimal heap capacity (to [`MIN_HEAP_STEP`]
/// granularity) at which `workload` completes with `policy` applied.
///
/// `hint` seeds the upper bound (e.g. the profiling run's peak live bytes);
/// the bound doubles until the workload completes.
pub fn min_heap_size(workload: &dyn Workload, policy: &[PortableUpdate], hint: u64) -> u64 {
    min_heap_size_with(workload, policy, hint, &EnvConfig::default())
}

/// [`min_heap_size`] with an environment template (see
/// [`completes_under_with`]).
pub fn min_heap_size_with(
    workload: &dyn Workload,
    policy: &[PortableUpdate],
    hint: u64,
    template: &EnvConfig,
) -> u64 {
    // Establish a completing upper bound.
    let mut hi = hint.max(64 * 1024);
    while !completes_under_with(workload, policy, hi, template) {
        hi = hi.saturating_mul(2);
        assert!(
            hi < (1 << 40),
            "workload does not complete even with a 1 TiB heap"
        );
    }
    let mut lo = 0u64;
    // Invariant: completes at hi, not at lo.
    while hi - lo > MIN_HEAP_STEP {
        let mid = lo + (hi - lo) / 2;
        if completes_under_with(workload, policy, mid, template) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_collections::CollectionFactory;

    /// Keeps `n` maps of 4 entries alive simultaneously.
    fn pinned_maps(n: usize) -> impl Workload {
        ("pinned", move |f: &CollectionFactory| {
            let _g = f.enter("P.site:1");
            let mut keep = Vec::new();
            for _ in 0..n {
                let mut m = f.new_map::<i64, i64>(None);
                for i in 0..4 {
                    m.put(i, i);
                }
                keep.push(m);
            }
        })
    }

    #[test]
    fn completes_detects_oom() {
        let w = pinned_maps(50);
        assert!(completes_under(&w, &[], 64 * 1024 * 1024));
        assert!(!completes_under(&w, &[], 4 * 1024));
    }

    #[test]
    fn min_heap_scales_with_live_data() {
        let small = min_heap_size(&pinned_maps(20), &[], 64 * 1024);
        let large = min_heap_size(&pinned_maps(100), &[], 64 * 1024);
        assert!(
            large > small + 3 * MIN_HEAP_STEP,
            "5x live data must need a bigger heap: {small} vs {large}"
        );
        // Sanity: both complete at their reported minimum and fail at
        // noticeably less.
        let w = pinned_maps(20);
        assert!(completes_under(&w, &[], small));
        assert!(!completes_under(&w, &[], small / 2));
    }

    #[test]
    fn policy_reduces_min_heap() {
        use crate::env::{PortableChoice, PortableUpdate};
        use chameleon_collections::factory::Selection;
        use chameleon_collections::MapChoice;
        let w = pinned_maps(100);
        let before = min_heap_size(&w, &[], 64 * 1024);
        let policy = vec![PortableUpdate {
            src_type: "HashMap".to_owned(),
            frames: vec!["P.site:1".to_owned()],
            kind: PortableChoice::Map(Selection {
                choice: MapChoice::ArrayMap,
                capacity: Some(4),
            }),
        }];
        let after = min_heap_size(&w, &policy, 64 * 1024);
        assert!(
            after < before,
            "ArrayMap policy must shrink the minimal heap ({before} -> {after})"
        );
    }
}
