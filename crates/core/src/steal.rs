//! Work-stealing partition scheduler.
//!
//! The parallel runner assigns partition indices to workers in contiguous
//! blocks (worker 0 gets the first block, and so on), which keeps each
//! worker touching a cache-coherent run of the task list. A worker that
//! drains its own queue steals from the back of the *richest* remaining
//! queue, so a straggler partition at the end of one block cannot leave
//! the other workers idle — the failure mode of static block assignment
//! with non-divisible plans (e.g. 7 partitions on 3 threads).
//!
//! Scheduling here only decides *which thread* runs a partition; results
//! are collected by partition index, so any steal order yields bit-
//! identical merged output.

use crate::sync::Mutex;
use std::collections::VecDeque;

/// Per-worker task queues over partition indices `0..tasks`.
pub struct StealQueues {
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Block-assignment parameters, kept so [`StealQueues::home`] can
    /// recover which worker a partition was originally dealt to.
    base: usize,
    extra: usize,
}

impl StealQueues {
    /// Distributes `tasks` indices across `workers` queues in contiguous
    /// blocks (first queues get the larger blocks when not divisible).
    pub fn new(workers: usize, tasks: usize) -> Self {
        assert!(workers > 0, "at least one worker queue");
        let base = tasks / workers;
        let extra = tasks % workers;
        let mut next = 0usize;
        let queues = (0..workers)
            .map(|w| {
                let len = base + usize::from(w < extra);
                let block = (next..next + len).collect::<VecDeque<usize>>();
                next += len;
                Mutex::new(block)
            })
            .collect();
        StealQueues {
            queues,
            base,
            extra,
        }
    }

    /// The worker whose block originally contained `task`. A worker that
    /// pulls a partition whose home is another queue has stolen it — the
    /// parallel runner marks that with a `steal` instant-event.
    pub fn home(&self, task: usize) -> usize {
        let boundary = self.extra * (self.base + 1);
        if self.base == 0 {
            // Fewer tasks than workers: every task sits alone in its queue.
            task
        } else if task < boundary {
            task / (self.base + 1)
        } else {
            self.extra + (task - boundary) / self.base
        }
    }

    /// Next partition index for `worker`: its own queue front first, then a
    /// steal from the back of the longest other queue. `None` once every
    /// queue is empty.
    pub fn next(&self, worker: usize) -> Option<usize> {
        if let Some(i) = self.queues[worker].lock().pop_front() {
            return Some(i);
        }
        loop {
            let mut victim: Option<(usize, usize)> = None; // (len, queue)
            for (q, queue) in self.queues.iter().enumerate() {
                if q == worker {
                    continue;
                }
                let len = queue.lock().len();
                if len > 0 && victim.is_none_or(|(best, _)| len > best) {
                    victim = Some((len, q));
                }
            }
            let (_, q) = victim?;
            if let Some(i) = self.queues[q].lock().pop_back() {
                return Some(i);
            }
            // The victim drained between the scan and the steal; rescan.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn blocks_are_contiguous_and_cover_all_tasks() {
        let q = StealQueues::new(3, 7);
        // Worker 0 drains its own block in order before stealing.
        assert_eq!(q.next(0), Some(0));
        assert_eq!(q.next(0), Some(1));
        assert_eq!(q.next(0), Some(2));
        // Exhausted own queue: steals from the richest remaining queue.
        let stolen = q.next(0).expect("work remains");
        assert!((3..7).contains(&stolen));
    }

    #[test]
    fn every_task_is_handed_out_exactly_once() {
        for (workers, tasks) in [(1, 5), (3, 7), (4, 4), (5, 3), (4, 0)] {
            let q = StealQueues::new(workers, tasks);
            let mut seen = HashSet::new();
            let mut turn = 0usize;
            while let Some(i) = q.next(turn % workers) {
                assert!(seen.insert(i), "task {i} handed out twice");
                turn += 1;
            }
            assert_eq!(seen.len(), tasks, "{workers} workers / {tasks} tasks");
            for w in 0..workers {
                assert_eq!(q.next(w), None, "drained queues stay drained");
            }
        }
    }

    #[test]
    fn home_matches_the_initial_block_assignment() {
        for (workers, tasks) in [(1, 5), (3, 7), (4, 4), (5, 3), (2, 9), (4, 1)] {
            let q = StealQueues::new(workers, tasks);
            // Reconstruct the dealt blocks independently of home().
            let base = tasks / workers;
            let extra = tasks % workers;
            let mut next = 0usize;
            for w in 0..workers {
                let len = base + usize::from(w < extra);
                for t in next..next + len {
                    assert_eq!(q.home(t), w, "{workers} workers / {tasks} tasks, task {t}");
                }
                next += len;
            }
        }
    }

    #[test]
    fn concurrent_workers_partition_the_tasks() {
        let q = StealQueues::new(4, 64);
        let claimed: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|w| {
                    let q = &q;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(i) = q.next(w) {
                            mine.push(i);
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<usize> = claimed.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
    }
}
