//! std-vs-loom indirection for this crate's concurrency kernel (the
//! work-stealing partition queues). See `chameleon_telemetry::sync` for
//! the scheme; this crate only needs the lock type.

#[cfg(feature = "model")]
pub(crate) use loom::sync::Mutex;

#[cfg(not(feature = "model"))]
pub(crate) use parking_lot::Mutex;
