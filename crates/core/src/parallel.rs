//! Parallel mutator runtime with deterministic partition merge.
//!
//! [`Env::run_parallel`] executes a partitioned workload on a pool of
//! mutator threads. Each partition runs against its own *hermetic*
//! environment — a fresh **shard-local** heap (single-mutator, no per-op
//! mutex), runtime, factory and profiler built from the parent's
//! [`EnvConfig`] — so mutator threads share no simulation state, never
//! contend on the parent heap, and take zero locks on the allocation
//! path. Partitions are scheduled by work stealing (contiguous blocks per
//! worker, steal-from-richest when drained), so non-divisible plans keep
//! every thread busy. When every partition has finished, the results are
//! folded into the parent environment **in partition-index order**:
//! context tables are merged by `Arc`-shared export/import with id remap,
//! GC cycles and heap snapshots renumbered, per-context traces merged,
//! simulated time accumulated, and each partition's capture counters
//! flushed into the parent's telemetry in one batch (one counter merge
//! per partition, not per op). Because the merge order is fixed and each
//! partition is a deterministic function of its task alone, `RunMetrics`,
//! the profile report and rule suggestions are a function of
//! `(workload, partition plan)` only — the OS thread interleaving cannot
//! leak into any result.
//!
//! With one partition the workload runs inline on the parent environment,
//! making `run_parallel` bit-identical to [`Env::run`] by construction.
//! Note that a *multi*-partition plan is its own point in the
//! simulation's configuration space: each partition heap triggers
//! allocation-driven GC from its own `bytes_since_gc` counter, so the
//! merged cycle history differs from the unpartitioned sequential run
//! (deterministically so).

use crate::env::{Env, EnvConfig};
use crate::steal::StealQueues;
use crate::workload::{PartitionTask, Workload};
use chameleon_heap::{ContextExport, ContextId, CycleStats, HeapSnapshot};
use chameleon_profiler::ContextTrace;
use chameleon_telemetry::{SpanRecord, SpanTimer, Tracer};
use parking_lot::Mutex;

/// Mutator threads to use when the caller does not pick a count: the
/// host's available parallelism (1 when the runtime cannot tell).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Parallel-run parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of partitions to split the workload into. The partition
    /// count — not the thread count — is what shapes the results.
    pub partitions: usize,
    /// Number of mutator threads executing partitions. Purely a
    /// scheduling choice: any thread count yields bit-identical results
    /// for the same partition plan.
    pub threads: usize,
}

impl ParallelConfig {
    /// `n` partitions on `n` threads — the CLI's `--threads n` shape.
    pub fn with_threads(n: usize) -> Self {
        ParallelConfig {
            partitions: n,
            threads: n,
        }
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig::with_threads(default_threads())
    }
}

/// Why a parallel run could not start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParallelError {
    /// `partitions` was zero; at least one partition is required.
    ZeroPartitions,
    /// `threads` was zero; at least one mutator thread is required.
    ZeroThreads,
    /// The workload's [`Workload::partitions`] returned no plan.
    NotPartitionable {
        /// Name of the workload that could not be partitioned.
        workload: String,
    },
}

impl std::fmt::Display for ParallelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParallelError::ZeroPartitions => {
                write!(f, "partition count must be at least 1 (got 0)")
            }
            ParallelError::ZeroThreads => {
                write!(f, "mutator thread count must be at least 1 (got 0)")
            }
            ParallelError::NotPartitionable { workload } => {
                write!(f, "workload `{workload}` does not support partitioning")
            }
        }
    }
}

impl std::error::Error for ParallelError {}

/// Summary of a parallel run (the simulation results live in the parent
/// environment, exactly as after [`Env::run`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelStats {
    /// Partitions executed (1 when the run degenerated to sequential).
    pub partitions: usize,
    /// Mutator threads used.
    pub threads: usize,
    /// Collection-instance statistics flushed as survivors across all
    /// partitions.
    pub survivors: usize,
    /// Times any thread found a heap lock already held (parent heap plus
    /// all partition heaps). Observability only — not deterministic.
    pub lock_contention: u64,
}

/// Everything a finished partition hands back for the ordered merge.
/// Plain data only, so it crosses the thread boundary freely.
struct PartitionOutcome {
    name: String,
    sim_time: u64,
    cycles: Vec<CycleStats>,
    snapshots: Vec<HeapSnapshot>,
    /// The partition heap's context table in id order: index `i` is the
    /// partition-local `ContextId(i)`. `Arc`-shared with the (dropped)
    /// partition heap, so extraction copies no strings.
    contexts: ContextExport,
    traces: Vec<(Option<ContextId>, ContextTrace)>,
    captures: u64,
    /// `(frame_misses, context_misses)` of the partition's intern table,
    /// flushed into the parent's telemetry as one batch at merge time.
    intern_misses: (u64, u64),
    survivors: usize,
    lock_contention: u64,
    allocated_bytes: u64,
    allocated_objects: u64,
    wall_ns: u64,
    /// Span records drained from the partition's child tracer (empty when
    /// tracing is off). Ids live in the child's id space until the parent
    /// adopts them at merge time, in partition-index order.
    trace: Vec<SpanRecord>,
    /// Parent-space id of the worker-side `partition` span the adopted
    /// records are reparented under (0 = none).
    trace_parent: u64,
    /// Worker lane the partition executed on.
    lane: u32,
}

/// Runs one partition to completion in a fresh hermetic environment and
/// extracts its portable outcome. `trace` is `(parent tracer, worker lane,
/// stolen)` when tracing is armed: the partition gets a `partition` span on
/// the worker's lane (preceded by a `steal` instant when the index came
/// from another worker's queue), and runs against a *child* tracer whose
/// records the parent adopts during the deterministic merge — so worker
/// rings stay single-writer and the trace is causal across the fork/join.
fn run_partition(
    config: &EnvConfig,
    task: &PartitionTask,
    index: usize,
    trace: Option<(&Tracer, u32, bool)>,
) -> PartitionOutcome {
    let timer = SpanTimer::start();
    let (span, child_tracer) = match trace {
        Some((tr, lane_id, stolen)) => {
            let lane = tr.lane(lane_id);
            if stolen {
                lane.instant("steal", &[("partition", index as u64)]);
            }
            let span = lane
                .scope("partition")
                .map(|s| s.arg("partition", index as u64));
            (span, Some(tr.child(lane_id)))
        }
        None => (None, None),
    };
    let mut local_config = config.clone();
    // Name the partition in the heap's single-mutator machinery so a
    // concurrent-entry panic reports which partition was entered twice.
    local_config.shard_index = Some(index);
    if let Some(child) = &child_tracer {
        local_config.tracer = Some(child.clone());
    }
    let env = Env::new(&local_config);
    task.run(&env.factory);
    env.heap.gc();
    let survivors = env.rt.flush_survivors();
    let traces = env
        .profiler
        .as_ref()
        .map(|p| p.traces())
        .unwrap_or_default();
    let trace_parent = span.as_ref().map_or(0, |s| s.id());
    let lane = trace.map_or(0, |(_, lane_id, _)| lane_id);
    let trace = child_tracer
        .as_ref()
        .map(|c| c.records())
        .unwrap_or_default();
    PartitionOutcome {
        name: task.name().to_owned(),
        sim_time: env.rt.clock().now(),
        cycles: env.heap.cycles(),
        snapshots: env.heap.heap_snapshots(),
        contexts: env.heap.export_contexts(),
        traces,
        captures: env.factory.capture_count(),
        intern_misses: env.heap.context_intern_misses(),
        survivors,
        lock_contention: env.heap.lock_contention(),
        allocated_bytes: env.heap.total_allocated_bytes(),
        allocated_objects: env.heap.total_allocated_objects(),
        wall_ns: timer.elapsed_ns(),
        trace,
        trace_parent,
        lane,
    }
}

impl Env {
    /// Runs `workload` split into `config.partitions` independent
    /// partitions on `config.threads` mutator threads, then merges every
    /// partition's results into this environment in partition-index
    /// order.
    ///
    /// Determinism contract: for a fixed workload and partition count,
    /// the merged [`RunMetrics`](crate::RunMetrics), profile report and
    /// downstream rule suggestions are bit-identical for **any** thread
    /// count. With `partitions == 1` the workload runs inline via
    /// [`Env::run`], so the single-partition results match the sequential
    /// path exactly.
    ///
    /// # Errors
    ///
    /// Fails when `partitions` or `threads` is zero, or when the workload
    /// returns no partition plan (`partitions > 1` only).
    pub fn run_parallel(
        &self,
        workload: &dyn Workload,
        config: ParallelConfig,
    ) -> Result<ParallelStats, ParallelError> {
        if config.partitions == 0 {
            return Err(ParallelError::ZeroPartitions);
        }
        if config.threads == 0 {
            return Err(ParallelError::ZeroThreads);
        }
        if config.partitions == 1 {
            self.run(workload);
            return Ok(ParallelStats {
                partitions: 1,
                threads: 1,
                survivors: 0,
                lock_contention: self.heap.lock_contention(),
            });
        }
        let tasks = workload
            .partitions(config.partitions)
            .filter(|t| !t.is_empty())
            .ok_or_else(|| ParallelError::NotPartitionable {
                workload: workload.name().to_owned(),
            })?;

        // Children are silent (the parent narrates the run, per partition,
        // in merge order) and shard-local: one mutator per heap means the
        // partition allocation path takes no lock at all. Tracing-wise the
        // children are *not* detached: each partition records into a child
        // tracer the parent adopts at merge time (worker lane w runs on
        // trace lane w+1; lane 0 is the parent).
        let child_config = EnvConfig {
            telemetry: None,
            tracer: None,
            shard_heap: true,
            ..self.config.clone()
        };
        let tracer = self.config.tracer.clone().filter(|tr| tr.is_armed());
        let workers = config.threads.min(tasks.len());
        let run_span = self
            .trace
            .as_ref()
            .and_then(|l| l.scope("run_parallel"))
            .map(|s| {
                s.arg("partitions", tasks.len() as u64)
                    .arg("threads", workers as u64)
            });
        let outcomes: Vec<PartitionOutcome> = if workers == 1 {
            let worker_span = tracer.as_ref().and_then(|tr| tr.lane(1).scope("worker"));
            let outcomes = tasks
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    run_partition(
                        &child_config,
                        t,
                        i,
                        tracer.as_ref().map(|tr| (tr, 1, false)),
                    )
                })
                .collect();
            drop(worker_span);
            outcomes
        } else {
            // Work-stealing schedule: each worker owns a contiguous block
            // of partition indices and steals from the richest queue once
            // drained. Which thread runs which partition is scheduling
            // noise; the index-ordered collection below erases it.
            let queues = StealQueues::new(workers, tasks.len());
            let slots: Vec<Mutex<Option<PartitionOutcome>>> =
                tasks.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|s| {
                for w in 0..workers {
                    let queues = &queues;
                    let tasks = &tasks;
                    let slots = &slots;
                    let child_config = &child_config;
                    let tracer = &tracer;
                    s.spawn(move || {
                        let lane_id = (w + 1) as u32;
                        let _worker_span = tracer
                            .as_ref()
                            .and_then(|tr| tr.lane(lane_id).scope("worker"))
                            .map(|sp| sp.arg("worker", w as u64));
                        while let Some(i) = queues.next(w) {
                            let stolen = queues.home(i) != w;
                            let trace = tracer.as_ref().map(|tr| (tr, lane_id, stolen));
                            *slots[i].lock() =
                                Some(run_partition(child_config, &tasks[i], i, trace));
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.into_inner().expect("every partition ran"))
                .collect()
        };

        // ----- deterministic merge, partition-index order --------------------
        let telemetry = self.rt.telemetry().filter(|t| t.is_enabled());
        let mut survivors = 0usize;
        let mut child_contention = 0u64;
        for (index, outcome) in outcomes.into_iter().enumerate() {
            let merge_span = self
                .trace
                .as_ref()
                .and_then(|l| l.scope("merge_partition"))
                .map(|s| s.arg("partition", index as u64));
            let base_units = self.rt.clock().now();
            self.rt.clock().charge(outcome.sim_time);

            // Merge the partition's context table by export/import: frame
            // names remap once, records re-intern with shared strings, and
            // index i of the remap is the partition-local ContextId(i).
            let remap: Vec<ContextId> = self.heap.import_contexts(&outcome.contexts);

            let mut cycles = outcome.cycles;
            let cycle_count = cycles.len() as u64;
            for c in &mut cycles {
                c.at_units += base_units;
                for (ctx, _) in &mut c.per_context {
                    *ctx = remap[ctx.0 as usize];
                }
                c.per_context.sort_by_key(|(ctx, _)| ctx.0);
            }
            let mut snapshots = outcome.snapshots;
            for s in &mut snapshots {
                s.at_units += base_units;
                for cs in &mut s.contexts {
                    if let Some(c) = cs.ctx {
                        cs.ctx = Some(remap[c.0 as usize]);
                    }
                }
                // Restore the documented invariant: context-id order, the
                // no-context bucket last.
                s.contexts.sort_by_key(|cs| match cs.ctx {
                    Some(c) => (0u8, c.0),
                    None => (1u8, 0),
                });
            }
            self.heap.absorb_partition(
                cycles,
                snapshots,
                outcome.allocated_bytes,
                outcome.allocated_objects,
            );

            if let Some(profiler) = &self.profiler {
                // Trace-map iteration order is irrelevant: traces merge
                // into disjoint per-context entries, and cross-partition
                // accumulation happens in this loop's fixed order.
                for (ctx, trace) in &outcome.traces {
                    let ctx = ctx.map(|c| remap[c.0 as usize]);
                    profiler.merge_trace(ctx, trace);
                }
            }
            self.factory.absorb_captures(outcome.captures);
            survivors += outcome.survivors;
            child_contention += outcome.lock_contention;

            // Adopt the partition's child-tracer records: ids remap into
            // the parent's id space, roots reparent under the worker-side
            // `partition` span, and the records land on the worker's lane.
            // Merge order is partition-index order, so the adopted id
            // assignment is deterministic for any thread count.
            if let Some(tr) = &tracer {
                tr.adopt(&outcome.trace, outcome.trace_parent, outcome.lane);
            }

            if let Some(t) = &telemetry {
                // Batched cross-shard flush: the partition ran with no
                // telemetry attached, so its capture counters land here as
                // one merge per partition instead of one op per capture.
                let (frame_misses, ctx_misses) = outcome.intern_misses;
                t.counter("heap.context.frame_misses").add(frame_misses);
                t.counter("heap.context.misses").add(ctx_misses);
                t.counter("heap.context.hits")
                    .add(outcome.captures.saturating_sub(ctx_misses));
                // Every count below is the partition's *own* total (the
                // event previously reported the parent's running GC total
                // as `cycles`), so parent-side aggregates must equal the
                // sum of these events over all partitions.
                let ops: u64 = outcome
                    .traces
                    .iter()
                    .map(|(_, trace)| trace.all_ops_total())
                    .sum();
                if let Some(mut e) = t.event("mutator_partition", self.rt.clock().now()) {
                    e.str("name", &outcome.name)
                        .num("index", index as u64)
                        .num("sim_time", outcome.sim_time)
                        .num("cycles", cycle_count)
                        .num("ops", ops)
                        .num("allocated_bytes", outcome.allocated_bytes)
                        .num("allocated_objects", outcome.allocated_objects)
                        .num("captures", outcome.captures)
                        .num("survivors", outcome.survivors as u64)
                        .num("lock_contention", outcome.lock_contention)
                        .num("wall_ns", outcome.wall_ns);
                }
            }
            drop(merge_span);
        }
        drop(run_span);

        let lock_contention = child_contention + self.heap.lock_contention();
        if let Some(t) = &telemetry {
            t.counter("mutator.lock_contention").add(lock_contention);
            if let Some(mut e) = t.event("parallel_run_end", self.rt.clock().now()) {
                e.str("name", workload.name())
                    .num("partitions", config.partitions as u64)
                    .num("threads", config.threads as u64)
                    .num("survivors", survivors as u64)
                    .num("lock_contention", lock_contention);
            }
        }
        Ok(ParallelStats {
            partitions: config.partitions,
            threads: config.threads,
            survivors,
            lock_contention,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_collections::CollectionFactory;

    /// A partitionable workload: `sites` allocation sites, each allocating
    /// a deterministic burst of maps and lists.
    struct Burst {
        sites: usize,
    }

    impl Burst {
        fn run_site(f: &CollectionFactory, site: usize) {
            let _g = f.enter(&format!("Burst.site:{site}"));
            let mut keep = Vec::new();
            for round in 0..20 {
                let mut m = f.new_map::<i64, i64>(None);
                for i in 0..(site as i64 % 5) {
                    m.put(i, i);
                }
                if round % 3 == 0 {
                    keep.push(m);
                }
                let mut l = f.new_list::<i64>(None);
                for i in 0..(round as i64) {
                    l.add(i);
                }
            }
        }
    }

    impl Workload for Burst {
        fn name(&self) -> &'static str {
            "burst"
        }
        fn run(&self, f: &CollectionFactory) {
            for site in 0..self.sites {
                Burst::run_site(f, site);
            }
        }
        fn partitions(&self, parts: usize) -> Option<Vec<PartitionTask>> {
            let parts = parts.min(self.sites).max(1);
            let per = self.sites.div_ceil(parts);
            Some(
                (0..parts)
                    .map(|p| {
                        let lo = p * per;
                        let hi = ((p + 1) * per).min(self.sites);
                        PartitionTask::new(format!("burst[{p}]"), move |f| {
                            for site in lo..hi {
                                Burst::run_site(f, site);
                            }
                        })
                    })
                    .collect(),
            )
        }
    }

    fn fingerprint(env: &Env) -> (crate::RunMetrics, String) {
        (env.metrics(), env.report().to_json())
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        // Same partition plan, different thread counts: every byte of the
        // metrics and of the ranked profile report must match.
        let mut prints = Vec::new();
        for threads in [1usize, 2, 4] {
            let env = Env::new(&EnvConfig::default());
            let stats = env
                .run_parallel(
                    &Burst { sites: 8 },
                    ParallelConfig {
                        partitions: 4,
                        threads,
                    },
                )
                .expect("parallel run");
            assert_eq!(stats.partitions, 4);
            prints.push(fingerprint(&env));
        }
        assert_eq!(prints[0], prints[1], "1 thread vs 2 threads");
        assert_eq!(prints[1], prints[2], "2 threads vs 4 threads");
    }

    #[test]
    fn non_divisible_plans_are_bit_identical() {
        // 7 partitions never divide evenly over 3 or 5 threads, and with
        // partitions > threads the work-stealing queues must hand every
        // index out exactly once. All merged results must still match the
        // single-threaded execution of the same plan byte for byte.
        let mut prints = Vec::new();
        for threads in [1usize, 3, 5] {
            let env = Env::new(&EnvConfig::default());
            let stats = env
                .run_parallel(
                    &Burst { sites: 14 },
                    ParallelConfig {
                        partitions: 7,
                        threads,
                    },
                )
                .expect("parallel run");
            assert_eq!(stats.partitions, 7);
            assert_eq!(
                stats.lock_contention, 0,
                "shard-local partition heaps have no lock to contend on"
            );
            prints.push(fingerprint(&env));
        }
        assert_eq!(prints[0], prints[1], "1 thread vs 3 threads");
        assert_eq!(prints[1], prints[2], "3 threads vs 5 threads");
    }

    #[test]
    fn default_config_uses_available_parallelism() {
        assert_eq!(
            ParallelConfig::default(),
            ParallelConfig::with_threads(crate::default_threads())
        );
        assert!(crate::default_threads() >= 1);
    }

    #[test]
    fn single_partition_matches_sequential_run() {
        let seq = Env::new(&EnvConfig::default());
        seq.run(&Burst { sites: 6 });

        let par = Env::new(&EnvConfig::default());
        let stats = par
            .run_parallel(&Burst { sites: 6 }, ParallelConfig::with_threads(1))
            .expect("parallel run");
        assert_eq!(stats.partitions, 1);
        assert_eq!(fingerprint(&seq), fingerprint(&par));
    }

    #[test]
    fn merge_preserves_instance_and_death_totals() {
        let seq = Env::new(&EnvConfig::default());
        seq.run(&Burst { sites: 8 });
        let seq_report = seq.report();

        let par = Env::new(&EnvConfig::default());
        par.run_parallel(&Burst { sites: 8 }, ParallelConfig::with_threads(4))
            .expect("parallel run");
        let par_report = par.report();

        // GC boundaries differ between the partitioned and sequential
        // histories, but semantic instance accounting must agree exactly.
        assert_eq!(seq_report.contexts.len(), par_report.contexts.len());
        for c in &seq_report.contexts {
            let p = par_report
                .by_label(&c.label)
                .unwrap_or_else(|| panic!("context {} missing from parallel report", c.label));
            assert_eq!(c.trace.instances, p.trace.instances, "{}", c.label);
            assert_eq!(
                c.trace.all_ops_total(),
                p.trace.all_ops_total(),
                "{}",
                c.label
            );
        }
        let seq_m = seq.metrics();
        let par_m = par.metrics();
        assert_eq!(seq_m.total_allocated_bytes, par_m.total_allocated_bytes);
        assert_eq!(seq_m.total_allocated_objects, par_m.total_allocated_objects);
    }

    #[test]
    fn zero_counts_and_unpartitionable_workloads_are_errors() {
        let env = Env::new(&EnvConfig::default());
        let w = Burst { sites: 4 };
        assert_eq!(
            env.run_parallel(
                &w,
                ParallelConfig {
                    partitions: 0,
                    threads: 2
                }
            )
            .unwrap_err(),
            ParallelError::ZeroPartitions
        );
        assert_eq!(
            env.run_parallel(
                &w,
                ParallelConfig {
                    partitions: 2,
                    threads: 0
                }
            )
            .unwrap_err(),
            ParallelError::ZeroThreads
        );
        // Tuple workloads have no partition plan.
        let plain = ("plain", |_f: &CollectionFactory| {});
        let err = env
            .run_parallel(&plain, ParallelConfig::with_threads(2))
            .unwrap_err();
        assert_eq!(
            err,
            ParallelError::NotPartitionable {
                workload: "plain".to_owned()
            }
        );
        assert!(err.to_string().contains("plain"), "{err}");
    }

    #[test]
    fn tracing_is_invisible_to_results_and_adopts_partition_spans() {
        let plain = Env::new(&EnvConfig::default());
        plain
            .run_parallel(&Burst { sites: 8 }, ParallelConfig::with_threads(2))
            .expect("parallel run");

        let tracer = Tracer::new();
        let traced = Env::new(&EnvConfig {
            tracer: Some(tracer.clone()),
            ..EnvConfig::default()
        });
        traced
            .run_parallel(&Burst { sites: 8 }, ParallelConfig::with_threads(2))
            .expect("parallel run");
        assert_eq!(
            fingerprint(&plain),
            fingerprint(&traced),
            "tracing must not perturb simulated results"
        );

        let recs = tracer.records();
        let names: Vec<&str> = recs.iter().map(|r| r.name).collect();
        assert!(names.contains(&"run_parallel"), "{names:?}");
        assert!(names.contains(&"worker"), "{names:?}");
        assert!(names.contains(&"merge_partition"), "{names:?}");
        // One partition span per partition; the partition's adopted GC
        // spans hang off it causally.
        let partitions: Vec<_> = recs.iter().filter(|r| r.name == "partition").collect();
        assert_eq!(partitions.len(), 2, "{names:?}");
        for p in &partitions {
            assert!(
                recs.iter().any(|r| r.parent == p.id && r.name == "gc"),
                "adopted child gc span under partition {}",
                p.id
            );
        }
        // Adoption must keep ids globally unique.
        let mut ids: Vec<u64> = recs.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), recs.len(), "duplicate span ids after adoption");
    }

    #[test]
    fn partition_telemetry_lands_on_the_parent() {
        use chameleon_telemetry::Telemetry;
        let t = Telemetry::new();
        t.set_enabled(true);
        let env = Env::new(&EnvConfig {
            telemetry: Some(t.clone()),
            ..EnvConfig::default()
        });
        env.run_parallel(&Burst { sites: 8 }, ParallelConfig::with_threads(2))
            .expect("parallel run");
        let events = t.events_snapshot();
        assert!(
            events.contains("mutator_partition"),
            "per-partition events: {events}"
        );
        assert!(events.contains("parallel_run_end"), "{events}");
        let metrics = t.metrics_snapshot();
        assert!(
            metrics.iter().any(|m| m.name == "mutator.lock_contention"),
            "contention counter registered"
        );
    }
}
