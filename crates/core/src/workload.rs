//! The workload abstraction: a program whose collection usage Chameleon
//! profiles and optimizes.

use chameleon_collections::CollectionFactory;

/// A deterministic program that allocates all its collections through the
/// provided factory.
///
/// Implementations must be repeatable: Chameleon runs them several times
/// (profiling run, measured re-runs, minimal-heap trials) and compares the
/// results.
pub trait Workload {
    /// Display name (e.g. `"tvla"`).
    fn name(&self) -> &'static str;

    /// Runs the program to completion. All collections must be allocated
    /// through `factory` and dropped before returning (so their trace
    /// statistics reach the profiler).
    fn run(&self, factory: &CollectionFactory);
}

impl<F> Workload for (&'static str, F)
where
    F: Fn(&CollectionFactory),
{
    fn name(&self) -> &'static str {
        self.0
    }

    fn run(&self, factory: &CollectionFactory) {
        (self.1)(factory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_collections::runtime::Runtime;
    use chameleon_heap::Heap;

    #[test]
    fn tuples_are_workloads() {
        let w = ("tiny", |f: &CollectionFactory| {
            let mut l = f.new_list::<i64>(None);
            l.add(1);
        });
        assert_eq!(w.name(), "tiny");
        let f = CollectionFactory::new(Runtime::new(Heap::new()));
        w.run(&f);
        assert!(f.runtime().heap().total_allocated_objects() > 0);
    }
}
