//! The workload abstraction: a program whose collection usage Chameleon
//! profiles and optimizes.

use chameleon_collections::CollectionFactory;

/// One independent slice of a partitioned workload.
///
/// The closure must be self-contained: running every partition of a plan,
/// in any order and on any thread, must perform the same allocations and
/// operations the whole workload would. `Env::run_parallel` runs each
/// partition against its own hermetic environment, so partitions never
/// observe each other.
pub struct PartitionTask {
    name: String,
    run: Box<dyn Fn(&CollectionFactory) + Send + Sync>,
}

impl PartitionTask {
    /// Creates a partition task.
    pub fn new(
        name: impl Into<String>,
        run: impl Fn(&CollectionFactory) + Send + Sync + 'static,
    ) -> Self {
        PartitionTask {
            name: name.into(),
            run: Box::new(run),
        }
    }

    /// Display name (e.g. `"tvla[2/4]"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs the partition to completion against `factory`.
    pub fn run(&self, factory: &CollectionFactory) {
        (self.run)(factory)
    }
}

impl std::fmt::Debug for PartitionTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionTask")
            .field("name", &self.name)
            .finish()
    }
}

/// A deterministic program that allocates all its collections through the
/// provided factory.
///
/// Implementations must be repeatable: Chameleon runs them several times
/// (profiling run, measured re-runs, minimal-heap trials) and compares the
/// results.
pub trait Workload {
    /// Display name (e.g. `"tvla"`).
    fn name(&self) -> &'static str;

    /// Runs the program to completion. All collections must be allocated
    /// through `factory` and dropped before returning (so their trace
    /// statistics reach the profiler).
    fn run(&self, factory: &CollectionFactory);

    /// Splits the workload into `parts` independent partitions for the
    /// parallel mutator runtime, or `None` (the default) when the workload
    /// cannot be partitioned. The ideal plan covers exactly the work of
    /// [`Workload::run`]: executing every partition sequentially in plan
    /// order performs the same operations in the same per-partition order.
    /// Workloads whose phases couple globally (e.g. a fixpoint over one
    /// shared state set) may instead shard their input; the operations then
    /// differ from the sequential run, but must still be a deterministic
    /// function of the plan alone.
    fn partitions(&self, parts: usize) -> Option<Vec<PartitionTask>> {
        let _ = parts;
        None
    }

    /// Splits the workload into named sequential phases for the serving
    /// runtime, or `None` (the default) when the workload is monolithic.
    /// Unlike [`Workload::partitions`], phases are not independent slices
    /// of the same work: they are distinct behaviours (e.g. a map-heavy
    /// warm-up followed by a list-heavy steady state) that a `tenant_step`
    /// command can drive one at a time. Running every phase in plan order
    /// must perform exactly the operations of [`Workload::run`].
    fn phases(&self) -> Option<Vec<PartitionTask>> {
        None
    }
}

impl<F> Workload for (&'static str, F)
where
    F: Fn(&CollectionFactory),
{
    fn name(&self) -> &'static str {
        self.0
    }

    fn run(&self, factory: &CollectionFactory) {
        (self.1)(factory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_collections::runtime::Runtime;
    use chameleon_heap::Heap;

    #[test]
    fn tuples_are_workloads() {
        let w = ("tiny", |f: &CollectionFactory| {
            let mut l = f.new_list::<i64>(None);
            l.add(1);
        });
        assert_eq!(w.name(), "tiny");
        let f = CollectionFactory::new(Runtime::new(Heap::new()));
        w.run(&f);
        assert!(f.runtime().heap().total_allocated_objects() > 0);
    }
}
