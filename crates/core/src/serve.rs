//! Multi-tenant online-adaptation server (`chameleon serve`).
//!
//! ROADMAP item 2's millions-of-users story scaled down to one process: a
//! long-running [`Server`] hosts N named tenant environments, each a
//! workload instance with its own hermetic heap / factory / profiler
//! (the same isolation contract as `core::parallel`'s partition
//! environments, including single-mutator shard heaps). Every tenant runs
//! the fully-automatic online mode (§3.3.2) with the hysteresis policy
//! and drift trigger from [`crate::online`].
//!
//! The server speaks JSONL: one command object per line in, one response
//! object per line out, both through `telemetry::json`. Commands:
//!
//! | command         | fields                           | effect |
//! |-----------------|----------------------------------|--------|
//! | `tenant_open`   | `tenant`, `workload`             | build a tenant environment |
//! | `tenant_step`   | `tenant`, `phase?`, `repeat?`    | run the workload (or one named phase) `repeat` times |
//! | `tenant_report` | `tenant`                         | per-tenant adaptation summary |
//! | `tenant_close`  | `tenant`                         | final GC + survivor flush, converged policy, teardown |
//! | `fleet_report`  | —                                | all tenant summaries + fleet aggregates |
//! | `shutdown`      | —                                | acknowledge and stop the stream loop |
//!
//! Blank lines and `#`-prefixed comment lines are skipped, so recorded
//! session scripts can be annotated.
//!
//! **Determinism contract:** a serve session is a pure function of its
//! command stream. Tenant state lives in `BTreeMap`s, responses are
//! rendered through the canonical `json::render` (sorted keys, no
//! whitespace), the evaluation cadence is death-count driven, and nothing
//! in this module reads the wall clock — so replaying the same script
//! yields byte-identical output, evaluation-for-evaluation.

use crate::env::{Env, EnvConfig};
use crate::online::{OnlineConfig, OnlineDriftConfig, OnlineSink};
use crate::workload::Workload;
use chameleon_heap::Heap;
use chameleon_rules::{PolicyUpdate, RuleEngine};
use chameleon_telemetry::json::{self, Value};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::sync::Arc;

/// Server construction parameters. The adaptation knobs mirror
/// [`OnlineConfig`] and apply to every tenant; unlike the single-tenant
/// online mode, drift detection defaults to **on** — a server cannot
/// assume its tenants keep one phase forever.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Environment template for tenants. Observability hooks (telemetry,
    /// tracer, heap profiling) are stripped per tenant; profiling is
    /// forced on (online adaptation requires it).
    pub env: EnvConfig,
    /// Death cadence between rule re-evaluations per tenant.
    pub eval_every_deaths: u64,
    /// Consecutive evaluations a policy change must win before it is
    /// installed (hysteresis K).
    pub confirm_evals: u64,
    /// Minimum `potential_bytes` a suggestion must show to become a
    /// hysteresis candidate.
    pub min_potential_bytes: u64,
    /// §4.2 per-type capture shutoff floor (None = never shut off).
    pub shutoff_below_potential: Option<u64>,
    /// Drift detection (re-profiling trigger). `None` disables it.
    pub drift: Option<OnlineDriftConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            env: EnvConfig::default(),
            eval_every_deaths: 64,
            confirm_evals: 2,
            min_potential_bytes: 0,
            shutoff_below_potential: None,
            drift: Some(OnlineDriftConfig::default()),
        }
    }
}

/// Builds a workload by registry name. The server takes this as a
/// parameter because the workload registry lives above `core` in the
/// crate graph (`chameleon-workloads` depends on `chameleon-core`); the
/// CLI passes `chameleon_workloads::by_name`.
pub type WorkloadResolver = Box<dyn Fn(&str) -> Option<Box<dyn Workload>>>;

/// One reply to one command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Canonical JSON text (no trailing newline).
    pub text: String,
    /// Whether the command asked the stream loop to stop.
    pub shutdown: bool,
}

struct Tenant {
    workload: Box<dyn Workload>,
    env: Env,
    sink: Arc<OnlineSink>,
    steps: u64,
}

/// The multi-tenant adaptation server.
pub struct Server {
    engine: Arc<RuleEngine>,
    config: ServeConfig,
    resolve: WorkloadResolver,
    tenants: BTreeMap<String, Tenant>,
    opened: usize,
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

fn num(n: u64) -> Value {
    Value::Num(n as f64)
}

fn text(s: impl Into<String>) -> Value {
    Value::Str(s.into())
}

fn kind_name(tag: u8) -> &'static str {
    match tag {
        0 => "list",
        1 => "set",
        _ => "map",
    }
}

/// Renders an installed override as a response object.
fn update_value(u: &PolicyUpdate, heap: &Heap) -> Value {
    let (kind, ctx, impl_name, capacity) = match u {
        PolicyUpdate::List(c, sel) => ("list", *c, format!("{:?}", sel.choice), sel.capacity),
        PolicyUpdate::Set(c, sel) => ("set", *c, format!("{:?}", sel.choice), sel.capacity),
        PolicyUpdate::Map(c, sel) => ("map", *c, format!("{:?}", sel.choice), sel.capacity),
    };
    obj(vec![
        ("kind", text(kind)),
        ("context", text(heap.format_context(ctx))),
        ("impl", text(impl_name)),
        (
            "capacity",
            capacity.map(|c| num(c as u64)).unwrap_or(Value::Null),
        ),
    ])
}

/// The implementation name an override selects (for fleet aggregation).
fn update_impl_name(u: &PolicyUpdate) -> String {
    match u {
        PolicyUpdate::List(_, sel) => format!("{:?}", sel.choice),
        PolicyUpdate::Set(_, sel) => format!("{:?}", sel.choice),
        PolicyUpdate::Map(_, sel) => format!("{:?}", sel.choice),
    }
}

fn tenant_summary(name: &str, t: &Tenant) -> Value {
    let m = t.env.metrics();
    let heap = &t.env.heap;
    let selections: Vec<Value> = t
        .sink
        .installed_updates()
        .iter()
        .map(|u| update_value(u, heap))
        .collect();
    let switches: Vec<Value> = t
        .sink
        .switch_counts()
        .iter()
        .map(|(tag, ctx, n)| {
            obj(vec![
                ("kind", text(kind_name(*tag))),
                ("context", text(heap.format_context(*ctx))),
                ("switches", num(*n)),
            ])
        })
        .collect();
    obj(vec![
        ("tenant", text(name)),
        ("workload", text(t.workload.name())),
        ("steps", num(t.steps)),
        ("deaths", num(t.sink.death_total())),
        ("evaluations", num(t.sink.evaluations())),
        ("replacements", num(t.sink.replacements())),
        ("reverts", num(t.sink.reverts())),
        ("drift_events", num(t.sink.drift_events())),
        ("max_switches", num(t.sink.max_switches())),
        (
            "disabled_types",
            Value::Arr(
                t.sink
                    .disabled_types()
                    .into_iter()
                    .map(Value::Str)
                    .collect(),
            ),
        ),
        ("selections", Value::Arr(selections)),
        ("switches", Value::Arr(switches)),
        (
            "metrics",
            obj(vec![
                ("sim_time", num(m.sim_time)),
                ("peak_live_bytes", num(m.peak_live_bytes)),
                ("gc_count", num(m.gc_count)),
                ("allocated_bytes", num(m.total_allocated_bytes)),
                ("allocated_objects", num(m.total_allocated_objects)),
                ("capture_count", num(m.capture_count)),
            ]),
        ),
    ])
}

impl Server {
    /// Builds a server. `resolve` maps `tenant_open`'s workload names to
    /// workload instances.
    pub fn new(engine: RuleEngine, config: &ServeConfig, resolve: WorkloadResolver) -> Self {
        Server {
            engine: Arc::new(engine),
            config: config.clone(),
            resolve,
            tenants: BTreeMap::new(),
            opened: 0,
        }
    }

    /// Number of currently open tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Handles one command line and produces one response line. Invalid
    /// input never panics or kills the server: it yields an
    /// `{"ok":false,"error":...}` response so a misbehaving client cannot
    /// take down the other tenants.
    pub fn handle_line(&mut self, line: &str) -> Reply {
        let (value, shutdown) = match self.dispatch(line) {
            Ok((v, shutdown)) => (v, shutdown),
            Err(msg) => (
                obj(vec![("ok", Value::Bool(false)), ("error", text(msg))]),
                false,
            ),
        };
        Reply {
            text: json::render(&value),
            shutdown,
        }
    }

    fn dispatch(&mut self, line: &str) -> Result<(Value, bool), String> {
        let v = json::parse(line).map_err(|e| format!("bad json: {e}"))?;
        let cmd = v
            .get("cmd")
            .and_then(Value::as_str)
            .ok_or("missing string field \"cmd\"")?
            .to_owned();
        let value = match cmd.as_str() {
            "tenant_open" => self.tenant_open(&v)?,
            "tenant_step" => self.tenant_step(&v)?,
            "tenant_report" => {
                let (name, t) = self.tenant(&v)?;
                obj(vec![
                    ("ok", Value::Bool(true)),
                    ("cmd", text("tenant_report")),
                    ("report", tenant_summary(&name, t)),
                ])
            }
            "tenant_close" => self.tenant_close(&v)?,
            "fleet_report" => self.fleet_report(),
            "shutdown" => {
                let value = obj(vec![
                    ("ok", Value::Bool(true)),
                    ("cmd", text("shutdown")),
                    ("tenants_open", num(self.tenants.len() as u64)),
                ]);
                return Ok((value, true));
            }
            other => return Err(format!("unknown command {other:?}")),
        };
        Ok((value, false))
    }

    fn tenant_name(v: &Value) -> Result<String, String> {
        Ok(v.get("tenant")
            .and_then(Value::as_str)
            .ok_or("missing string field \"tenant\"")?
            .to_owned())
    }

    fn tenant(&self, v: &Value) -> Result<(String, &Tenant), String> {
        let name = Self::tenant_name(v)?;
        let t = self
            .tenants
            .get(&name)
            .ok_or_else(|| format!("unknown tenant {name:?}"))?;
        Ok((name, t))
    }

    fn tenant_open(&mut self, v: &Value) -> Result<Value, String> {
        let name = Self::tenant_name(v)?;
        if self.tenants.contains_key(&name) {
            return Err(format!("tenant {name:?} already open"));
        }
        let workload_name = v
            .get("workload")
            .and_then(Value::as_str)
            .ok_or("missing string field \"workload\"")?;
        let workload = (self.resolve)(workload_name)
            .ok_or_else(|| format!("unknown workload {workload_name:?}"))?;

        // Hermetic tenant environment: same contract as a parallel
        // partition env — own shard heap, no shared observability hooks.
        // The server is single-threaded, so the single-mutator shard
        // invariant holds trivially.
        let env = Env::new(&EnvConfig {
            telemetry: None,
            tracer: None,
            heapprof: None,
            profiling: true,
            shard_heap: true,
            shard_index: Some(self.opened),
            ..self.config.env.clone()
        });
        let online = OnlineConfig {
            env: self.config.env.clone(),
            eval_every_deaths: self.config.eval_every_deaths,
            shutoff_below_potential: self.config.shutoff_below_potential,
            confirm_evals: self.config.confirm_evals,
            min_potential_bytes: self.config.min_potential_bytes,
            drift: self.config.drift,
        };
        let sink =
            OnlineSink::new(&env, self.engine.clone(), &online).map_err(|e| e.to_string())?;
        env.rt.set_sink(sink.clone());
        self.opened += 1;
        self.tenants.insert(
            name.clone(),
            Tenant {
                workload,
                env,
                sink,
                steps: 0,
            },
        );
        Ok(obj(vec![
            ("ok", Value::Bool(true)),
            ("cmd", text("tenant_open")),
            ("tenant", text(name)),
            ("workload", text(workload_name)),
        ]))
    }

    fn tenant_step(&mut self, v: &Value) -> Result<Value, String> {
        let name = Self::tenant_name(v)?;
        let phase = v.get("phase").and_then(Value::as_str).map(str::to_owned);
        let repeat = match v.get("repeat") {
            None => 1,
            Some(r) => r
                .as_u64()
                .filter(|&n| n >= 1)
                .ok_or("field \"repeat\" must be a positive integer")?,
        };
        let t = self
            .tenants
            .get_mut(&name)
            .ok_or_else(|| format!("unknown tenant {name:?}"))?;
        let phases = match &phase {
            Some(p) => {
                let plan = t
                    .workload
                    .phases()
                    .ok_or_else(|| format!("workload {:?} has no phases", t.workload.name()))?;
                let known: Vec<String> = plan.iter().map(|x| x.name().to_owned()).collect();
                Some(
                    plan.into_iter()
                        .find(|x| x.name() == p)
                        .ok_or_else(|| format!("unknown phase {p:?} (have {known:?})"))?,
                )
            }
            None => None,
        };
        for _ in 0..repeat {
            match &phases {
                Some(task) => task.run(&t.env.factory),
                None => t.workload.run(&t.env.factory),
            }
            // A GC per step keeps heap statistics (and thus
            // potential-bytes evidence) flowing between commands; the
            // survivor flush waits for tenant_close so long-lived state
            // is not double-counted across steps.
            t.env.heap.gc();
        }
        t.steps += repeat;
        Ok(obj(vec![
            ("ok", Value::Bool(true)),
            ("cmd", text("tenant_step")),
            ("tenant", text(name)),
            ("phase", phase.map(Value::Str).unwrap_or(Value::Null)),
            ("repeat", num(repeat)),
            ("steps", num(t.steps)),
            ("deaths", num(t.sink.death_total())),
            ("evaluations", num(t.sink.evaluations())),
            ("replacements", num(t.sink.replacements())),
            ("reverts", num(t.sink.reverts())),
            ("drift_events", num(t.sink.drift_events())),
        ]))
    }

    fn tenant_close(&mut self, v: &Value) -> Result<Value, String> {
        let name = Self::tenant_name(v)?;
        let t = self
            .tenants
            .get(&name)
            .ok_or_else(|| format!("unknown tenant {name:?}"))?;
        // End-of-life accounting, as Env::run does for one-shot runs:
        // final GC, then deliver survivors so long-lived contexts reach
        // the converged policy.
        t.env.heap.gc();
        t.env.rt.flush_survivors();
        let report = t.env.report();
        let converged: Vec<Value> = self
            .engine
            .evaluate(&report)
            .iter()
            .filter(|s| s.auto_applicable())
            .map(|s| {
                obj(vec![
                    ("context", text(&s.label)),
                    ("src_type", text(&s.src_type)),
                    ("potential_bytes", num(s.potential_bytes)),
                ])
            })
            .collect();
        let summary = tenant_summary(&name, t);
        self.tenants.remove(&name);
        Ok(obj(vec![
            ("ok", Value::Bool(true)),
            ("cmd", text("tenant_close")),
            ("report", summary),
            ("converged", Value::Arr(converged)),
        ]))
    }

    fn fleet_report(&self) -> Value {
        let mut tenants = BTreeMap::new();
        let mut deaths = 0u64;
        let mut evaluations = 0u64;
        let mut replacements = 0u64;
        let mut reverts = 0u64;
        let mut drift_events = 0u64;
        let mut max_switches = 0u64;
        let mut by_impl: BTreeMap<String, u64> = BTreeMap::new();
        for (name, t) in &self.tenants {
            tenants.insert(name.clone(), tenant_summary(name, t));
            deaths += t.sink.death_total();
            evaluations += t.sink.evaluations();
            replacements += t.sink.replacements();
            reverts += t.sink.reverts();
            drift_events += t.sink.drift_events();
            max_switches = max_switches.max(t.sink.max_switches());
            for u in t.sink.installed_updates() {
                *by_impl.entry(update_impl_name(&u)).or_insert(0) += 1;
            }
        }
        obj(vec![
            ("ok", Value::Bool(true)),
            ("cmd", text("fleet_report")),
            ("tenants", Value::Obj(tenants)),
            (
                "fleet",
                obj(vec![
                    ("tenants", num(self.tenants.len() as u64)),
                    ("deaths", num(deaths)),
                    ("evaluations", num(evaluations)),
                    ("replacements", num(replacements)),
                    ("reverts", num(reverts)),
                    ("drift_events", num(drift_events)),
                    ("max_switches", num(max_switches)),
                    (
                        "selections_by_impl",
                        Value::Obj(by_impl.into_iter().map(|(k, n)| (k, num(n))).collect()),
                    ),
                ]),
            ),
        ])
    }
}

/// Drives `server` over a JSONL stream: one response line per command
/// line, blank and `#`-comment lines skipped. Returns `true` when the
/// stream ended because of a `shutdown` command (rather than EOF).
pub fn serve_stream<R: BufRead, W: Write>(
    server: &mut Server,
    reader: R,
    mut writer: W,
) -> std::io::Result<bool> {
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let reply = server.handle_line(trimmed);
        writeln!(writer, "{}", reply.text)?;
        if reply.shutdown {
            writer.flush()?;
            return Ok(true);
        }
    }
    writer.flush()?;
    Ok(false)
}

/// Serves connections on a Unix socket at `path`, one at a time (the
/// determinism contract is per command stream; concurrent clients would
/// interleave nondeterministically). An existing socket file at `path` is
/// replaced. Returns after a client sends `shutdown`.
#[cfg(unix)]
pub fn serve_socket(server: &mut Server, path: &std::path::Path) -> std::io::Result<()> {
    use std::os::unix::net::UnixListener;

    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = std::io::BufReader::new(stream.try_clone()?);
        if serve_stream(server, reader, stream)? {
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::PartitionTask;
    use chameleon_collections::CollectionFactory;

    /// A miniature phase-shift tenant workload: small maps in phase one,
    /// get-hammered linked lists in phase two.
    struct TwoPhase;

    fn map_heavy(f: &CollectionFactory) {
        let _g = f.enter("tp.MapHeavy:1");
        for i in 0..120 {
            let mut m = f.new_map::<i64, i64>(None);
            for k in 0..4 {
                m.put(k, i + k);
            }
            let _ = m.get(&0);
        }
    }

    fn list_heavy(f: &CollectionFactory) {
        let _g = f.enter("tp.ListHeavy:2");
        for i in 0..120 {
            let mut l = f.new_linked_list::<i64>();
            for k in 0..8 {
                l.add(i + k);
            }
            for g in 0..96 {
                let _ = l.get(g % 8);
            }
        }
    }

    impl Workload for TwoPhase {
        fn name(&self) -> &'static str {
            "two-phase"
        }
        fn run(&self, f: &CollectionFactory) {
            map_heavy(f);
            list_heavy(f);
        }
        fn phases(&self) -> Option<Vec<PartitionTask>> {
            Some(vec![
                PartitionTask::new("map-heavy", map_heavy),
                PartitionTask::new("list-heavy", list_heavy),
            ])
        }
    }

    /// Steady workload: small maps forever.
    struct Steady;
    impl Workload for Steady {
        fn name(&self) -> &'static str {
            "steady"
        }
        fn run(&self, f: &CollectionFactory) {
            map_heavy(f);
        }
    }

    fn resolver() -> WorkloadResolver {
        Box::new(|name| match name {
            "two-phase" => Some(Box::new(TwoPhase)),
            "steady" => Some(Box::new(Steady)),
            _ => None,
        })
    }

    fn server() -> Server {
        Server::new(
            RuleEngine::builtin(),
            &ServeConfig {
                eval_every_deaths: 50,
                ..ServeConfig::default()
            },
            resolver(),
        )
    }

    const SESSION: &str = r#"
# three tenants: a shifts phase, b and c stay steady
{"cmd":"tenant_open","tenant":"a","workload":"two-phase"}
{"cmd":"tenant_open","tenant":"b","workload":"two-phase"}
{"cmd":"tenant_open","tenant":"c","workload":"steady"}
{"cmd":"tenant_step","tenant":"a","phase":"map-heavy","repeat":4}
{"cmd":"tenant_step","tenant":"b","phase":"map-heavy","repeat":4}
{"cmd":"tenant_step","tenant":"c","repeat":4}
{"cmd":"tenant_report","tenant":"a"}
{"cmd":"tenant_step","tenant":"a","phase":"list-heavy","repeat":4}
{"cmd":"tenant_step","tenant":"b","phase":"map-heavy","repeat":4}
{"cmd":"tenant_step","tenant":"c","repeat":4}
{"cmd":"fleet_report"}
{"cmd":"tenant_close","tenant":"a"}
{"cmd":"tenant_close","tenant":"b"}
{"cmd":"tenant_close","tenant":"c"}
{"cmd":"shutdown"}
"#;

    fn run_session(script: &str) -> String {
        let mut out = Vec::new();
        let ended =
            serve_stream(&mut server(), script.as_bytes(), &mut out).expect("in-memory stream");
        assert!(ended, "script ends with shutdown");
        String::from_utf8(out).expect("responses are utf-8")
    }

    fn fleet_of(output: &str) -> Value {
        let line = output
            .lines()
            .find(|l| l.contains("\"cmd\":\"fleet_report\""))
            .expect("fleet report present");
        json::parse(line).expect("fleet report parses")
    }

    #[test]
    fn replayed_sessions_are_byte_identical() {
        let first = run_session(SESSION);
        let second = run_session(SESSION);
        assert_eq!(first, second, "serve sessions must replay bit-identically");
        // Every response is itself canonical JSON.
        for line in first.lines() {
            let v = json::parse(line).expect("response parses");
            assert_eq!(json::render(&v), line, "response is canonical");
        }
    }

    #[test]
    fn phase_shift_drifts_only_the_tenant_that_shifted() {
        let output = run_session(SESSION);
        let fleet = fleet_of(&output);
        let tenants = fleet.get("tenants").expect("tenants object");
        let drift = |name: &str| {
            tenants
                .get(name)
                .and_then(|t| t.get("drift_events"))
                .and_then(Value::as_u64)
                .expect("drift_events")
        };
        assert!(drift("a") >= 1, "the shifting tenant re-profiles: {output}");
        assert_eq!(drift("b"), 0, "steady tenant b must not drift: {output}");
        assert_eq!(drift("c"), 0, "steady tenant c must not drift: {output}");
    }

    #[test]
    fn no_tenant_flaps() {
        let output = run_session(SESSION);
        let fleet = fleet_of(&output);
        let tenants = fleet
            .get("tenants")
            .expect("tenants object")
            .as_obj()
            .unwrap();
        for (name, t) in tenants {
            let max = t.get("max_switches").and_then(Value::as_u64).unwrap();
            // Two phases: an install in each (plus at most a revert of the
            // stale one after the shift) — never more than one switch per
            // phase per slot.
            assert!(max <= 2, "tenant {name} flapped ({max} switches): {output}");
            let replacements = t.get("replacements").and_then(Value::as_u64).unwrap();
            assert!(replacements >= 1, "tenant {name} adapted: {output}");
        }
    }

    #[test]
    fn closing_reports_a_converged_policy() {
        let output = run_session(SESSION);
        let close_a = output
            .lines()
            .filter(|l| l.contains("\"cmd\":\"tenant_close\""))
            .map(|l| json::parse(l).expect("parses"))
            .find(|v| {
                v.get("report")
                    .and_then(|r| r.get("tenant"))
                    .and_then(Value::as_str)
                    == Some("a")
            })
            .expect("tenant a close response");
        let converged = close_a.get("converged").and_then(Value::as_arr).unwrap();
        assert!(
            !converged.is_empty(),
            "tenant a converges to a non-empty policy: {output}"
        );
    }

    #[test]
    fn errors_are_structured_and_non_fatal() {
        let mut s = server();
        for (line, needle) in [
            ("not json", "bad json"),
            ("{\"nocmd\":1}", "missing string field \"cmd\""),
            ("{\"cmd\":\"launch\"}", "unknown command"),
            (
                "{\"cmd\":\"tenant_step\",\"tenant\":\"ghost\"}",
                "unknown tenant",
            ),
            (
                "{\"cmd\":\"tenant_open\",\"tenant\":\"a\",\"workload\":\"nope\"}",
                "unknown workload",
            ),
        ] {
            let reply = s.handle_line(line);
            assert!(!reply.shutdown);
            let v = json::parse(&reply.text).expect("error replies are json");
            assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
            let err = v.get("error").and_then(Value::as_str).unwrap();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
        // The server is still usable afterwards.
        let reply = s.handle_line(r#"{"cmd":"tenant_open","tenant":"a","workload":"steady"}"#);
        let v = json::parse(&reply.text).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(s.tenant_count(), 1);

        // Duplicate opens and bad phases are rejected without teardown.
        for line in [
            r#"{"cmd":"tenant_open","tenant":"a","workload":"steady"}"#,
            r#"{"cmd":"tenant_step","tenant":"a","phase":"warp"}"#,
            r#"{"cmd":"tenant_step","tenant":"a","repeat":0}"#,
        ] {
            let v = json::parse(&s.handle_line(line).text).unwrap();
            assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{line}");
        }
        assert_eq!(s.tenant_count(), 1);
    }

    #[cfg(unix)]
    #[test]
    fn socket_sessions_match_stdin_sessions() {
        use std::io::{BufRead, BufReader, Write};
        use std::os::unix::net::UnixStream;

        let dir = std::env::temp_dir().join(format!("chameleon-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.sock");
        let server_path = path.clone();
        let handle = std::thread::spawn(move || {
            let mut s = server();
            serve_socket(&mut s, &server_path).expect("socket serve");
        });
        // The listener may not be bound yet; retry the connect briefly.
        let stream = loop {
            match UnixStream::connect(&path) {
                Ok(s) => break s,
                Err(_) => std::thread::yield_now(),
            }
        };
        let mut writer = stream.try_clone().unwrap();
        writer.write_all(SESSION.as_bytes()).unwrap();
        writer.flush().unwrap();
        let mut socket_out = String::new();
        for line in BufReader::new(stream).lines() {
            socket_out.push_str(&line.unwrap());
            socket_out.push('\n');
        }
        handle.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(socket_out, run_session(SESSION));
    }
}
