//! Run metrics and before/after comparisons.

/// Measurements of one workload run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Simulated time in cost units.
    pub sim_time: u64,
    /// Largest live heap observed at any GC cycle.
    pub peak_live_bytes: u64,
    /// Number of GC cycles.
    pub gc_count: u64,
    /// Total bytes allocated over the run.
    pub total_allocated_bytes: u64,
    /// Total objects allocated over the run.
    pub total_allocated_objects: u64,
    /// Allocation contexts captured (profiling overhead indicator).
    pub capture_count: u64,
}

/// Before/after comparison of a metric pair, as the paper reports them:
/// improvement as a percentage of the original.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Improvement {
    /// The original (baseline) value.
    pub before: f64,
    /// The optimized value.
    pub after: f64,
}

impl Improvement {
    /// Creates a comparison.
    pub fn new(before: f64, after: f64) -> Self {
        Improvement { before, after }
    }

    /// Percentage improvement relative to the baseline (positive = better,
    /// i.e. smaller after).
    pub fn pct(&self) -> f64 {
        if self.before == 0.0 {
            0.0
        } else {
            100.0 * (self.before - self.after) / self.before
        }
    }

    /// Speedup factor `before / after`.
    pub fn factor(&self) -> f64 {
        if self.after == 0.0 {
            f64::INFINITY
        } else {
            self.before / self.after
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_percentages() {
        let i = Improvement::new(100.0, 50.0);
        assert!((i.pct() - 50.0).abs() < 1e-9);
        assert!((i.factor() - 2.0).abs() < 1e-9);
        let worse = Improvement::new(100.0, 135.0);
        assert!((worse.pct() + 35.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(Improvement::new(0.0, 10.0).pct(), 0.0);
        assert!(Improvement::new(10.0, 0.0).factor().is_infinite());
    }

    #[test]
    fn zero_baseline_never_divides() {
        // A run that allocated nothing must not report NaN/inf percentages.
        let i = Improvement::new(0.0, 0.0);
        assert_eq!(i.pct(), 0.0);
        assert!(i.pct().is_finite());
        let worse_from_nothing = Improvement::new(0.0, 1.0e9);
        assert_eq!(worse_from_nothing.pct(), 0.0);
        assert!(worse_from_nothing.pct().is_finite());
    }

    #[test]
    fn negative_deltas_report_regressions() {
        // after > before = regression = negative percentage, factor < 1.
        let slower = Improvement::new(50.0, 200.0);
        assert!((slower.pct() + 300.0).abs() < 1e-9);
        assert!((slower.factor() - 0.25).abs() < 1e-9);
        // Sign conventions survive tiny deltas without cancelling to zero.
        let barely = Improvement::new(100.0, 100.000001);
        assert!(barely.pct() < 0.0);
        // And an identical pair is exactly zero, not a rounding artifact.
        assert_eq!(Improvement::new(42.0, 42.0).pct(), 0.0);
    }

    #[test]
    fn improvement_is_symmetric_under_factor_inverse() {
        let a = Improvement::new(80.0, 20.0);
        let b = Improvement::new(20.0, 80.0);
        assert!((a.factor() * b.factor() - 1.0).abs() < 1e-9);
        assert!(a.pct() > 0.0 && b.pct() < 0.0);
    }
}
