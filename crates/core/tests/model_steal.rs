//! Model checking for the work-stealing partition queues (`steal.rs`).
//!
//! Run with `cargo test --features model -p chameleon-core --test
//! model_steal`. Two workers drain a three-task plan under every explored
//! interleaving; the invariant is the one the deterministic merge relies
//! on: every partition index is handed out exactly once — no partition is
//! ever duplicated (two workers running the same partition) or dropped
//! (a partition whose results never reach the merge).

#![cfg(feature = "model")]

use chameleon_core::steal::StealQueues;
use std::sync::Arc;

const MIN_SCHEDULES: u64 = 1_000;

fn explorer() -> loom::Builder {
    loom::Builder {
        preemption_bound: 5,
        state_pruning: false,
        ..loom::Builder::default()
    }
}

/// Two workers over `StealQueues::new(2, 3)`: worker 0 is dealt {0, 1},
/// worker 1 is dealt {2}, so worker 1 must steal to stay busy. Across
/// every interleaving the union of the claims is exactly {0, 1, 2} with
/// no duplicates.
#[test]
fn partitions_are_claimed_exactly_once() {
    let stolen = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let report = {
        let s2 = Arc::clone(&stolen);
        explorer().check(move || {
            let queues = Arc::new(StealQueues::new(2, 3));
            let q = Arc::clone(&queues);
            let s3 = Arc::clone(&s2);
            let worker = loom::thread::spawn(move || {
                let mut mine = Vec::new();
                while let Some(i) = q.next(1) {
                    if q.home(i) != 1 {
                        s3.store(true, std::sync::atomic::Ordering::Relaxed);
                    }
                    mine.push(i);
                }
                mine
            });
            let mut mine = Vec::new();
            while let Some(i) = queues.next(0) {
                mine.push(i);
            }
            let theirs = worker.join().unwrap();
            let mut all: Vec<usize> = mine.iter().chain(theirs.iter()).copied().collect();
            all.sort_unstable();
            assert_eq!(
                all,
                vec![0, 1, 2],
                "partitions duplicated or dropped: mine={mine:?} theirs={theirs:?}"
            );
            // Drained queues stay drained from both workers' view.
            assert_eq!(queues.next(0), None);
            assert_eq!(queues.next(1), None);
        })
    };
    let stolen_in_some_schedule = stolen.load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        report.schedules >= MIN_SCHEDULES,
        "explored only {} schedules",
        report.schedules
    );
    // The steal path must actually run in some schedule (worker 0 slow
    // enough that worker 1 steals from its block), or the test never
    // exercises pop-back vs pop-front contention.
    assert!(
        stolen_in_some_schedule,
        "no schedule exercised the steal path"
    );
}
