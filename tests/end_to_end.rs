//! Integration tests spanning the whole pipeline: heap ← collections ←
//! profiler ← rules ← core ← workloads.

use chameleon_collections::CollectionFactory;
use chameleon_core::{
    min_heap_size, run_online, Chameleon, Env, EnvConfig, OnlineConfig, Workload,
};
use chameleon_rules::RuleEngine;
use chameleon_workloads::{Bloat, Findbugs, Fop, Pmd, Soot, Synthetic, Tvla};
use std::sync::Arc;

fn small_env() -> EnvConfig {
    EnvConfig {
        gc_interval_bytes: Some(32 * 1024),
        ..EnvConfig::default()
    }
}

#[test]
fn full_methodology_improves_synthetic_small_maps() {
    let w = Synthetic::small_maps(4);
    let chameleon = Chameleon::new().with_profile_config(small_env());
    let result = chameleon.optimize(&w);
    assert!(!result.applied.is_empty());
    assert!(
        result.min_heap_after < result.min_heap_before,
        "{} -> {}",
        result.min_heap_before,
        result.min_heap_after
    );
}

#[test]
fn every_paper_workload_profiles_and_suggests() {
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(Tvla {
            states: 60,
            rounds: 2,
        }),
        Box::new(Bloat {
            wave_nodes: 30,
            waves: 2,
            spike_nodes: 200,
            manual_lazy: false,
        }),
        Box::new(Fop { nodes: 60 }),
        Box::new(Findbugs {
            classes: 40,
            methods_per_class: 4,
        }),
        Box::new(Pmd {
            ast_nodes: 600,
            symbol_set_size: 200,
        }),
        Box::new(Soot {
            methods: 40,
            stmts_per_method: 8,
        }),
    ];
    let chameleon = Chameleon::new().with_profile_config(small_env());
    for w in workloads {
        let report = chameleon.profile(w.as_ref());
        assert!(
            !report.contexts.is_empty(),
            "{}: no contexts profiled",
            w.name()
        );
        let suggestions = chameleon.engine().evaluate(&report);
        assert!(
            !suggestions.is_empty(),
            "{}: no suggestions produced",
            w.name()
        );
    }
}

#[test]
fn pmd_space_result_reproduces_zero_improvement() {
    // The paper's negative result must reproduce: PMD's minimal heap is
    // dominated by large stable collections the rules correctly leave
    // alone.
    let w = Pmd {
        ast_nodes: 800,
        symbol_set_size: 400,
    };
    let chameleon = Chameleon::new().with_profile_config(small_env());
    let result = chameleon.optimize(&w);
    let saving = result.space_improvement().pct();
    assert!(
        saving.abs() < 5.0,
        "pmd min-heap should be (nearly) unchanged, got {saving:.1}%"
    );
    // ... while allocation volume drops.
    assert!(
        result.time_after.total_allocated_bytes < result.time_before.total_allocated_bytes,
        "fixes must reduce allocation volume"
    );
}

#[test]
fn suggestions_survive_environment_boundaries() {
    // Profile in one environment, apply in a completely fresh one.
    let w = Synthetic::small_maps(3);
    let chameleon = Chameleon::new().with_profile_config(small_env());
    let result = chameleon.optimize(&w);
    assert!(!result.applied.is_empty());

    let fresh = Env::new(&small_env());
    fresh.apply_policy(&result.applied);
    fresh.run(&w);
    let report = fresh.report();
    // In the fresh run the overridden contexts must have been served by
    // the replacement implementation.
    let arraymap_seen = report
        .contexts
        .iter()
        .any(|c| c.trace.impl_counts.contains_key("ArrayMap"));
    assert!(arraymap_seen, "{report:#?}");
}

#[test]
fn online_mode_converges_to_offline_quality() {
    let w = Tvla {
        states: 80,
        rounds: 4,
    };
    let online = run_online(
        &w,
        Arc::new(RuleEngine::builtin()),
        &OnlineConfig {
            env: small_env(),
            eval_every_deaths: 64,
            shutoff_below_potential: None,
            ..OnlineConfig::default()
        },
    )
    .expect("online run");
    assert!(online.replacements > 0, "online mode must install policies");
    let baseline = min_heap_size(&w, &[], 64 * 1024);
    let online_min = min_heap_size(&w, &online.converged_policy, 64 * 1024);
    assert!(
        (online_min as f64) < baseline as f64 * 0.75,
        "converged online policy must save space: {baseline} -> {online_min}"
    );
}

#[test]
fn profiler_and_gc_agree_on_collection_counts() {
    // The number of live top-level collections the GC sees must equal the
    // number of live handles.
    let env = Env::new(&EnvConfig::default());
    let f = &env.factory;
    let _g = f.enter("agree.Site:1");
    let mut handles = Vec::new();
    for i in 0..25i64 {
        let mut m = f.new_map::<i64, i64>(None);
        m.put(i, i);
        handles.push(m);
    }
    let lists: Vec<_> = (0..10).map(|_| f.new_list::<i64>(None)).collect();
    let cycle = env.heap.gc();
    assert_eq!(cycle.collection.count as usize, handles.len() + lists.len());
    drop(handles);
    drop(lists);
    let cycle = env.heap.gc();
    assert_eq!(cycle.collection.count, 0);
}

#[test]
fn custom_rules_drive_the_full_pipeline() {
    let mut engine = RuleEngine::new();
    engine
        .add_rules(
            r#"HashMap : instances > 0 && maxSize < 100 -> LinkedHashMap "Space: demo rule""#,
        )
        .expect("valid rule");
    let w = ("custom", |f: &CollectionFactory| {
        let _g = f.enter("c.Site:1");
        let mut keep = Vec::new();
        for i in 0..30i64 {
            let mut m = f.new_map::<i64, i64>(None);
            m.put(i, i);
            keep.push(m);
        }
    });
    let chameleon = Chameleon::new()
        .with_engine(engine)
        .with_profile_config(small_env());
    let report = chameleon.profile(&w);
    let suggestions = chameleon.engine().evaluate(&report);
    assert_eq!(suggestions.len(), 1);
    assert!(suggestions[0].rule_text.contains("LinkedHashMap"));
    assert!(suggestions[0].auto_applicable());
}

#[test]
fn capture_depth_reaches_through_factories() {
    // TVLA's maps all flow through HashMapFactory; depth-2 contexts must
    // separate the seven call sites.
    let chameleon = Chameleon::new().with_profile_config(small_env());
    let report = chameleon.profile(&Tvla {
        states: 40,
        rounds: 2,
    });
    let map_ctxs = report
        .contexts
        .iter()
        .filter(|c| c.src_type == "HashMap")
        .count();
    assert_eq!(map_ctxs, chameleon_workloads::tvla::TVLA_MAP_CONTEXTS);
}

#[test]
fn redundant_iterator_rule_fires_on_empty_iteration_churn() {
    // The Table 2 iterator rule: a context whose collections are always
    // empty yet iterated constantly gets the "remove redundant iterator"
    // advice (before the generic lazification rules see it).
    let w = ("iter-churn", |f: &CollectionFactory| {
        let _g = f.enter("iter.Visitor.children:66");
        for _ in 0..50 {
            let l = f.new_list::<i64>(None);
            for _ in 0..30 {
                assert_eq!(l.iter().count(), 0);
            }
        }
    });
    let chameleon = Chameleon::new().with_profile_config(small_env());
    let report = chameleon.profile(&w);
    let suggestions = chameleon.engine().evaluate(&report);
    let s = suggestions
        .iter()
        .find(|s| s.label.contains("iter.Visitor.children:66"))
        .expect("iterator context flagged");
    assert!(
        s.rule_text.contains("RemoveIterator"),
        "expected the iterator rule, got: {}",
        s.rule_text
    );
}

#[test]
fn jvm64_layout_runs_end_to_end() {
    let cfg = EnvConfig {
        model: chameleon_repro::heap::MemoryModel::jvm64(),
        gc_interval_bytes: Some(48 * 1024),
        ..EnvConfig::default()
    };
    let chameleon = Chameleon::new().with_profile_config(cfg);
    let result = chameleon.optimize(&Synthetic::small_maps(3));
    assert!(result.min_heap_after < result.min_heap_before);
    // 64-bit layouts make entry overhead larger, so savings are at least
    // as big as in the 32-bit run.
    let chameleon32 = Chameleon::new().with_profile_config(small_env());
    let result32 = chameleon32.optimize(&Synthetic::small_maps(3));
    assert!(
        result.space_improvement().pct() >= result32.space_improvement().pct() - 3.0,
        "64-bit: {:.1}%, 32-bit: {:.1}%",
        result.space_improvement().pct(),
        result32.space_improvement().pct()
    );
}
