//! End-to-end tests for continuous heap profiling: retained-size
//! reconciliation against `CycleStats`, bit-identical simulation results
//! with profiling on/off/absent, snapshot cadence, and flamegraph export.

use chameleon_core::{Env, EnvConfig};
use chameleon_heap::HeapProfConfig;
use chameleon_profiler::HeapProfile;
use chameleon_telemetry::{json, DriftConfig};
use chameleon_workloads::{SizeDist, Synthetic, SyntheticSite};

fn prof_env(every: u64) -> EnvConfig {
    EnvConfig {
        gc_interval_bytes: Some(32 * 1024),
        heapprof: Some(HeapProfConfig { every }),
        ..EnvConfig::default()
    }
}

/// Long-lived collections so GC cycles see real live data.
fn workload() -> Synthetic {
    Synthetic {
        sites: (0..3)
            .map(|i| SyntheticSite {
                frame: format!("heapprof.Site:{i}"),
                instances: 120,
                sizes: SizeDist::Fixed(8),
                gets_per_instance: 0,
                long_lived: true,
                via_factory: false,
            })
            .collect(),
    }
}

/// Acceptance: every snapshot's retained sizes reconcile exactly with the
/// GC's own `CycleStats` — the sum of per-context self bytes, the virtual
/// root's retained size, and the cycle's `live_bytes` all agree.
#[test]
fn retained_totals_reconcile_with_cycle_stats() {
    let env = Env::new(&prof_env(1));
    env.run(&workload());
    let snapshots = env.heap.heap_snapshots();
    let cycles = env.heap.cycles();
    assert!(snapshots.len() >= 2, "need several GC cycles to reconcile");
    assert_eq!(
        snapshots.len(),
        cycles.len(),
        "every=1 snapshots every cycle"
    );
    for (snap, cycle) in snapshots.iter().zip(&cycles) {
        assert_eq!(snap.cycle, cycle.cycle);
        assert_eq!(snap.live_bytes, cycle.live_bytes);
        let self_sum: u64 = snap.contexts.iter().map(|c| c.self_bytes).sum();
        assert_eq!(self_sum, cycle.live_bytes, "self bytes partition the heap");
        assert_eq!(snap.retained_root, cycle.live_bytes, "root retains all");
        for c in &snap.contexts {
            assert!(c.retained_bytes >= c.self_bytes, "retained >= self");
        }
        // Per-context collection accounting matches the cycle's.
        let coll_sum =
            snap.contexts
                .iter()
                .fold(chameleon_heap::AdtTotals::default(), |mut acc, c| {
                    acc.add(c.coll);
                    acc
                });
        assert_eq!(coll_sum, cycle.collection);
    }
}

/// Heap profiling observes the simulation; it must never perturb it: the
/// same workload yields bit-identical metrics *and* per-cycle GC stats
/// with profiling absent, every cycle, or every third cycle.
#[test]
fn heap_profiling_never_perturbs_simulated_results() {
    let w = workload();
    let run = |heapprof: Option<HeapProfConfig>| {
        let cfg = EnvConfig {
            heapprof,
            gc_interval_bytes: Some(32 * 1024),
            ..EnvConfig::default()
        };
        let env = Env::new(&cfg);
        env.run(&w);
        (env.metrics(), env.heap.cycles())
    };
    let absent = run(None);
    let every1 = run(Some(HeapProfConfig { every: 1 }));
    let every3 = run(Some(HeapProfConfig { every: 3 }));
    assert_eq!(absent, every1);
    assert_eq!(absent, every3);
    assert!(absent.0.gc_count >= 2);
}

/// `every = N` captures exactly the cycles 1, 1+N, 1+2N, ... and the
/// sparse snapshot sequence is a prefix-selection of the dense one.
#[test]
fn snapshot_cadence_is_a_subset_of_cycles() {
    let w = workload();
    let run = |every| {
        let env = Env::new(&prof_env(every));
        env.run(&w);
        env.heap.heap_snapshots()
    };
    let dense = run(1);
    let sparse = run(3);
    let expected: Vec<u64> = dense
        .iter()
        .map(|s| s.cycle)
        .filter(|c| (c - 1) % 3 == 0)
        .collect();
    let got: Vec<u64> = sparse.iter().map(|s| s.cycle).collect();
    assert_eq!(got, expected, "cadence must follow 1, 4, 7, ...");
    for s in &sparse {
        let twin = dense
            .iter()
            .find(|d| d.cycle == s.cycle)
            .expect("sparse cycle exists in dense run");
        assert_eq!(s, twin, "sparse snapshots match the dense run exactly");
    }
}

/// The flamegraph renders the peak snapshot: each line parses as
/// `frames... weight` and the weights are exactly the peak snapshot's
/// non-zero retained sizes.
#[test]
fn flamegraph_weights_match_the_peak_snapshot() {
    let env = Env::new(&prof_env(1));
    env.run(&workload());
    let profile = HeapProfile::from_heap(&env.heap, 64);
    let peak = profile.peak_snapshot().expect("snapshots captured");
    let fg = profile.flamegraph(&env.heap);
    let mut weights: Vec<u64> = fg
        .lines()
        .map(|l| {
            let (stack, w) = l.rsplit_once(' ').expect("stack/weight split");
            assert!(!stack.is_empty());
            w.parse().expect("weight is a u64")
        })
        .collect();
    let mut expected: Vec<u64> = peak
        .contexts
        .iter()
        .map(|c| c.retained_bytes)
        .filter(|&r| r > 0)
        .collect();
    weights.sort_unstable();
    expected.sort_unstable();
    assert_eq!(weights, expected);
    assert!(!weights.is_empty());
}

/// The JSONL and summary exports are valid JSON and reconcile with the
/// captured snapshots.
#[test]
fn exports_reconcile_with_snapshots() {
    let env = Env::new(&prof_env(2));
    env.run(&workload());
    let profile = HeapProfile::from_heap(&env.heap, 64);
    let jsonl = profile.snapshots_jsonl(&env.heap);
    let lines = json::validate_jsonl(&jsonl, &["ev", "t", "cycle", "contexts"]).unwrap();
    assert_eq!(lines, profile.snapshots.len());
    for (line, snap) in jsonl.lines().zip(&profile.snapshots) {
        let v = json::parse(line).unwrap();
        assert_eq!(v.get("cycle").unwrap().as_u64(), Some(snap.cycle));
        assert_eq!(v.get("live_bytes").unwrap().as_u64(), Some(snap.live_bytes));
        let ctxs = v.get("contexts").unwrap().as_arr().unwrap();
        assert_eq!(ctxs.len(), snap.contexts.len());
    }
    let summary = json::parse(&profile.summary_json(&env.heap, 5, &DriftConfig::default()))
        .expect("summary parses");
    assert_eq!(
        summary.get("snapshots").unwrap().as_u64(),
        Some(profile.snapshots.len() as u64)
    );
    let peak = profile.peak_snapshot().unwrap();
    assert_eq!(
        summary.get("peak_cycle").unwrap().as_u64(),
        Some(peak.cycle)
    );
}
