//! End-to-end tests for the flight recorder: the panic hook dumps the
//! tail of every lane's ring when a worker thread dies, and the GC
//! anomaly trigger dumps when a pause blows past the running median.

use chameleon_collections::CollectionFactory;
use chameleon_core::{Env, EnvConfig, ParallelConfig, PartitionTask, Workload};
use chameleon_heap::{ElemKind, GcConfig, Heap, HeapConfig};
use chameleon_telemetry::{json, Tracer};
use std::collections::BTreeSet;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Per-test temp dir, namespaced by process so parallel `cargo test`
/// binaries never collide. Recreated empty on each call.
fn flight_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "chameleon-flight-e2e-{}-{label}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create flight dir");
    dir
}

/// Files in `dir` whose name starts with `flight-{reason}-`.
fn dumps(dir: &PathBuf, reason: &str) -> Vec<PathBuf> {
    let prefix = format!("flight-{reason}-");
    let mut out: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read flight dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".json"))
        })
        .collect();
    out.sort();
    out
}

/// A partition plan where every partition does real collection work and
/// the last one panics midway — inducing a worker death with completed
/// spans already sitting in both workers' rings.
struct PanicAtFive;

fn panic_site(f: &CollectionFactory, p: usize) {
    let _g = f.enter("PanicAtFive.site:1");
    let mut m = f.new_map::<i64, i64>(None);
    for i in 0..64 {
        m.put(i, i);
    }
    assert!(p != 5, "induced worker panic in partition 5");
}

impl Workload for PanicAtFive {
    fn name(&self) -> &'static str {
        "panic-at-five"
    }
    fn run(&self, f: &CollectionFactory) {
        for p in 0..6 {
            panic_site(f, p);
        }
    }
    fn partitions(&self, _parts: usize) -> Option<Vec<PartitionTask>> {
        // Worker 0 owns partitions 0..3, worker 1 owns 3..6; the panic in
        // partition 5 fires after both workers have completed spans.
        Some(
            (0..6)
                .map(|p| PartitionTask::new(format!("panic[{p}]"), move |f| panic_site(f, p)))
                .collect(),
        )
    }
}

#[test]
fn panic_hook_dumps_spans_from_all_worker_lanes() {
    // Worker scheduling decides how many spans each lane holds at panic
    // time, so retry the run until a dump shows both worker lanes.
    for attempt in 0..5 {
        let dir = flight_dir(&format!("panic-{attempt}"));
        let tracer = Tracer::new();
        tracer.set_flight_dir(&dir);
        tracer.install_panic_hook();
        let env = Env::new(&EnvConfig {
            tracer: Some(tracer.clone()),
            gc_interval_bytes: Some(32 * 1024),
            ..EnvConfig::default()
        });
        let result = catch_unwind(AssertUnwindSafe(|| {
            env.run_parallel(
                &PanicAtFive,
                ParallelConfig {
                    partitions: 6,
                    threads: 2,
                },
            )
        }));
        assert!(result.is_err(), "partition 5 must panic");

        let files = dumps(&dir, "panic");
        assert!(!files.is_empty(), "panic hook wrote no flight dump");
        let body = fs::read_to_string(&files[0]).expect("read dump");
        let v = json::parse(&body).expect("dump is valid Chrome JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let lanes: BTreeSet<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) != Some("M"))
            .map(|e| e.get("tid").unwrap().as_u64().unwrap())
            .collect();
        let has_partition_span = events
            .iter()
            .any(|e| e.get("name").and_then(|n| n.as_str()) == Some("partition"));
        if lanes.contains(&1) && lanes.contains(&2) && has_partition_span {
            return;
        }
        eprintln!("attempt {attempt}: dump covered lanes {lanes:?}, retrying");
    }
    panic!("no flight dump covered both worker lanes in 5 attempts");
}

#[test]
fn gc_anomaly_trigger_dumps_when_a_pause_blows_past_the_median() {
    let dir = flight_dir("anomaly");
    let tracer = Tracer::new();
    tracer.set_flight_dir(&dir);
    let heap = Heap::with_config(HeapConfig {
        gc: GcConfig {
            anomaly_factor: 2,
            ..GcConfig::default()
        },
        ..HeapConfig::default()
    });
    heap.attach_tracer(&tracer.lane(0));
    let class = heap.register_class("Blob", None);

    // Warm up the pause history with near-empty cycles: each pause is
    // ~cost_per_cycle, so the running median settles there.
    for _ in 0..10 {
        let _ = heap.alloc_scalar(class, 0, 8, None);
        heap.gc();
    }
    assert!(
        dumps(&dir, "gc-anomaly").is_empty(),
        "steady-state cycles must not trip the anomaly trigger"
    );

    // Now root ~200 KiB of live data: the next pause charges
    // live_kib * cost_per_live_kib, far beyond 2x the median.
    for _ in 0..200 {
        let arr = heap.alloc_array(class, ElemKind::Prim { bytes_per_elem: 1 }, 1024, None);
        heap.add_root(arr);
    }
    heap.gc();

    let files = dumps(&dir, "gc-anomaly");
    assert_eq!(files.len(), 1, "exactly one anomaly dump: {files:?}");
    let body = fs::read_to_string(&files[0]).expect("read dump");
    let v = json::parse(&body).expect("dump is valid Chrome JSON");
    let events = v.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(
        events
            .iter()
            .any(|e| e.get("name").and_then(|n| n.as_str()) == Some("gc")),
        "anomaly dump must carry the gc spans leading up to the spike"
    );
}

#[test]
fn disarmed_tracer_never_dumps() {
    let dir = flight_dir("disarmed");
    let tracer = Tracer::disarmed();
    tracer.set_flight_dir(&dir);
    assert!(tracer.flight_dump("manual").is_none());
    assert!(dumps(&dir, "manual").is_empty());
}
