//! Property-based tests of the rule language: pretty-print → reparse
//! round-trips, evaluator totality, engine determinism, and analyzer
//! totality over both arbitrary bytes and grammar-derived rulesets.

use chameleon_rules::{
    analyze_source, parse_rule, parse_rules, RuleEngine, BUILTIN_RULES, DEFAULT_PARAMS,
};
use proptest::prelude::*;
use std::collections::HashMap;

fn default_params() -> HashMap<String, f64> {
    DEFAULT_PARAMS
        .iter()
        .map(|(k, v)| ((*k).to_owned(), *v))
        .collect()
}

/// Strategy generating syntactically valid rule text from grammar pieces.
fn metric() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("maxSize".to_owned()),
        Just("size".to_owned()),
        Just("peakSize".to_owned()),
        Just("initialCapacity".to_owned()),
        Just("instances".to_owned()),
        Just("totLive".to_owned()),
        Just("totUsed".to_owned()),
        Just("maxLive".to_owned()),
        Just("potential".to_owned()),
        Just("#add".to_owned()),
        Just("#get(int)".to_owned()),
        Just("#get(Object)".to_owned()),
        Just("#contains".to_owned()),
        Just("#remove(int)".to_owned()),
        Just("#removeFirst".to_owned()),
        Just("#addAll".to_owned()),
        Just("#copied".to_owned()),
        Just("#allOps".to_owned()),
        Just("@add".to_owned()),
        Just("@maxSize".to_owned()),
    ]
}

fn atom() -> impl Strategy<Value = String> {
    prop_oneof![metric(), (0u32..1000).prop_map(|n| n.to_string()),]
}

fn arith() -> impl Strategy<Value = String> {
    (atom(), prop_oneof![Just("+"), Just("-"), Just("*")], atom())
        .prop_map(|(a, op, b)| format!("{a} {op} {b}"))
}

fn comparison() -> impl Strategy<Value = String> {
    (
        prop_oneof![atom(), arith()],
        prop_oneof![
            Just("=="),
            Just("!="),
            Just("<"),
            Just("<="),
            Just(">"),
            Just(">=")
        ],
        atom(),
    )
        .prop_map(|(l, op, r)| format!("{l} {op} {r}"))
}

fn condition() -> impl Strategy<Value = String> {
    prop_oneof![
        comparison(),
        (
            comparison(),
            prop_oneof![Just("&&"), Just("||")],
            comparison()
        )
            .prop_map(|(a, op, b)| format!("{a} {op} {b}")),
        comparison().prop_map(|c| format!("!({c})")),
    ]
}

fn target() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("ArrayMap".to_owned()),
        Just("ArrayMap(maxSize)".to_owned()),
        Just("ArraySet(8)".to_owned()),
        Just("LazyArrayList".to_owned()),
        Just("SizeAdaptingMap(16)".to_owned()),
        Just("SetInitialCapacity(maxSize)".to_owned()),
        Just("Eliminate".to_owned()),
        Just("RemoveIterator".to_owned()),
        Just("Lazy".to_owned()),
    ]
}

fn src_type() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("Collection".to_owned()),
        Just("List".to_owned()),
        Just("HashMap".to_owned()),
        Just("HashSet".to_owned()),
        Just("ArrayList".to_owned()),
        Just("LinkedList".to_owned()),
    ]
}

fn rule_text() -> impl Strategy<Value = String> {
    (src_type(), condition(), target(), prop::bool::ANY).prop_map(|(s, c, t, msg)| {
        if msg {
            format!("{s} : {c} -> {t} \"Space: generated rule\"")
        } else {
            format!("{s} : {c} -> {t}")
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any grammar-derived rule parses, and its pretty-printed form
    /// reparses to a structurally identical rule.
    #[test]
    fn print_reparse_roundtrip(text in rule_text()) {
        let rule = parse_rule(&text).expect("generated rule parses");
        let printed = rule.to_string();
        let reparsed = parse_rule(&printed)
            .unwrap_or_else(|e| panic!("printed form must reparse: {printed}\n{e}"));
        prop_assert_eq!(reparsed.src_type, rule.src_type);
        prop_assert_eq!(reparsed.action, rule.action);
        prop_assert_eq!(reparsed.message, rule.message);
        prop_assert_eq!(reparsed.cond.to_string(), rule.cond.to_string());
    }

    /// Multiple generated rules concatenated with `;` parse as a batch.
    #[test]
    fn batches_parse(texts in prop::collection::vec(rule_text(), 1..6)) {
        let src = texts.join(";\n");
        let rules = parse_rules(&src).expect("batch parses");
        prop_assert_eq!(rules.len(), texts.len());
    }

    /// The engine accepts any well-formed generated rule (validation) and
    /// evaluation over an arbitrary profile never panics.
    #[test]
    fn engine_accepts_and_evaluates(texts in prop::collection::vec(rule_text(), 1..5)) {
        use chameleon_collections::{CollectionFactory, Runtime};
        use chameleon_heap::Heap;
        use chameleon_profiler::{ProfileReport, Profiler};

        let mut engine = RuleEngine::new();
        for t in &texts {
            engine.add_rules(t).expect("generated rules validate");
        }

        // A tiny real profile to evaluate against.
        let heap = Heap::new();
        let rt = Runtime::new(heap.clone());
        let profiler = Profiler::install(&rt);
        let f = CollectionFactory::new(rt);
        {
            let _g = f.enter("gen.Site:1");
            let mut m = f.new_map::<i64, i64>(None);
            m.put(1, 1);
            let mut l = f.new_list::<i64>(None);
            l.add(5);
            heap.gc();
        }
        heap.gc();
        let report = ProfileReport::build(&profiler, &heap);
        // Totality: must not panic, and at most one suggestion per context.
        let suggestions = engine.evaluate(&report);
        prop_assert!(suggestions.len() <= report.contexts.len());
    }

    /// The full front end — lexer, parser, and whole-ruleset analyzer —
    /// is total on arbitrary byte strings: it may reject, but it must
    /// never panic, and any report it does produce must render and
    /// serialise without panicking.
    #[test]
    fn analyzer_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let params = default_params();
        if let Ok(report) = analyze_source(&src, &params) {
            let _ = report.render(&src);
            let _ = report.to_json(&src);
        }
    }

    /// Grammar-derived rulesets always analyze without panicking, and the
    /// report is internally consistent: counts match the diagnostic list
    /// and both output formats succeed.
    #[test]
    fn analyzer_total_on_generated_rulesets(texts in prop::collection::vec(rule_text(), 1..6)) {
        let src = texts.join(";\n");
        let params = default_params();
        let report = analyze_source(&src, &params).expect("generated rules parse");
        prop_assert_eq!(
            report.diagnostics.len(),
            report.errors() + report.warnings() + report.infos()
        );
        let text = report.render(&src);
        prop_assert!(!text.is_empty());
        let json = report.to_json(&src);
        prop_assert!(json.contains("\"findings\""));
    }

    /// Evaluation is deterministic: same engine, same report, same output.
    #[test]
    fn evaluation_is_deterministic(text in rule_text()) {
        use chameleon_collections::{CollectionFactory, Runtime};
        use chameleon_heap::Heap;
        use chameleon_profiler::{ProfileReport, Profiler};

        let mut engine = RuleEngine::new();
        engine.add_rules(&text).expect("validates");
        let heap = Heap::new();
        let rt = Runtime::new(heap.clone());
        let profiler = Profiler::install(&rt);
        let f = CollectionFactory::new(rt);
        {
            let _g = f.enter("det.Site:1");
            let mut s = f.new_set::<i64>(None);
            for i in 0..6 {
                s.add(i);
            }
            heap.gc();
        }
        heap.gc();
        let report = ProfileReport::build(&profiler, &heap);
        let a: Vec<String> = engine.evaluate(&report).iter().map(|s| s.to_string()).collect();
        let b: Vec<String> = engine.evaluate(&report).iter().map(|s| s.to_string()).collect();
        prop_assert_eq!(a, b);
    }
}

/// Regression gate: the shipped Table 2 ruleset with its default
/// parameters must lint completely clean — not even an Info finding.
#[test]
fn builtin_ruleset_lints_clean() {
    let report = analyze_source(BUILTIN_RULES, &default_params()).expect("builtin parses");
    assert!(
        report.is_clean(),
        "builtin ruleset must produce zero findings:\n{}",
        report.render(BUILTIN_RULES)
    );
}
