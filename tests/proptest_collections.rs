//! Property-based tests: every swappable implementation must be
//! observationally equivalent to the std-collection model under arbitrary
//! operation sequences (the paper's interchangeability requirement, §1),
//! and the heap accounting invariants must hold under arbitrary workloads.

use chameleon_collections::factory::{ListChoice, MapChoice, Selection, SetChoice};
use chameleon_collections::{CollectionFactory, Runtime};
use chameleon_heap::Heap;
use proptest::prelude::*;
use std::collections::{HashMap as StdMap, HashSet as StdSet};

#[derive(Debug, Clone)]
enum MapOp {
    Put(i64, i64),
    Get(i64),
    Remove(i64),
    ContainsKey(i64),
    Clear,
    Iterate,
}

fn map_ops() -> impl Strategy<Value = Vec<MapOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..24i64, any::<i64>()).prop_map(|(k, v)| MapOp::Put(k, v)),
            (0..24i64).prop_map(MapOp::Get),
            (0..24i64).prop_map(MapOp::Remove),
            (0..24i64).prop_map(MapOp::ContainsKey),
            Just(MapOp::Clear),
            Just(MapOp::Iterate),
        ],
        0..120,
    )
}

fn factory_with_map_choice(choice: MapChoice) -> CollectionFactory {
    let f = CollectionFactory::new(Runtime::new(Heap::new()));
    // Pre-intern the context and install the override.
    let ctx = {
        let _g = f.enter("prop.Site:1");
        f.new_map::<i64, i64>(None).ctx().expect("captured")
    };
    f.policy().lock().set_map(
        ctx,
        Selection {
            choice,
            capacity: None,
        },
    );
    f
}

fn check_map_equivalence(choice: MapChoice, ops: Vec<MapOp>) {
    let f = factory_with_map_choice(choice);
    let _g = f.enter("prop.Site:1");
    let mut subject = f.new_map::<i64, i64>(None);
    let mut model: StdMap<i64, i64> = StdMap::new();
    for op in ops {
        match op {
            MapOp::Put(k, v) => assert_eq!(subject.put(k, v), model.insert(k, v)),
            MapOp::Get(k) => assert_eq!(subject.get(&k), model.get(&k).copied()),
            MapOp::Remove(k) => assert_eq!(subject.remove(&k), model.remove(&k)),
            MapOp::ContainsKey(k) => {
                assert_eq!(subject.contains_key(&k), model.contains_key(&k))
            }
            MapOp::Clear => {
                subject.clear();
                model.clear();
            }
            MapOp::Iterate => {
                let got: StdMap<i64, i64> = subject.iter().collect();
                assert_eq!(got, model);
            }
        }
        assert_eq!(subject.size(), model.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hash_map_matches_model(ops in map_ops()) {
        check_map_equivalence(MapChoice::HashMap, ops);
    }

    #[test]
    fn linked_hash_map_matches_model(ops in map_ops()) {
        check_map_equivalence(MapChoice::LinkedHashMap, ops);
    }

    #[test]
    fn array_map_matches_model(ops in map_ops()) {
        check_map_equivalence(MapChoice::ArrayMap, ops);
    }

    #[test]
    fn lazy_map_matches_model(ops in map_ops()) {
        check_map_equivalence(MapChoice::LazyMap, ops);
    }

    #[test]
    fn size_adapting_map_matches_model_across_conversion(ops in map_ops()) {
        // Threshold 4 guarantees the conversion happens mid-sequence.
        check_map_equivalence(MapChoice::SizeAdapting(4), ops);
    }
}

#[derive(Debug, Clone)]
enum SetOp {
    Add(i64),
    Remove(i64),
    Contains(i64),
    Clear,
}

fn set_ops() -> impl Strategy<Value = Vec<SetOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..20i64).prop_map(SetOp::Add),
            (0..20i64).prop_map(SetOp::Remove),
            (0..20i64).prop_map(SetOp::Contains),
            Just(SetOp::Clear),
        ],
        0..100,
    )
}

fn check_set_equivalence(choice: SetChoice, ops: Vec<SetOp>) {
    let f = CollectionFactory::new(Runtime::new(Heap::new()));
    let ctx = {
        let _g = f.enter("prop.SetSite:1");
        f.new_set::<i64>(None).ctx().expect("captured")
    };
    f.policy().lock().set_set(
        ctx,
        Selection {
            choice,
            capacity: None,
        },
    );
    let _g = f.enter("prop.SetSite:1");
    let mut subject = f.new_set::<i64>(None);
    let mut model: StdSet<i64> = StdSet::new();
    for op in ops {
        match op {
            SetOp::Add(v) => assert_eq!(subject.add(v), model.insert(v)),
            SetOp::Remove(v) => assert_eq!(subject.remove(&v), model.remove(&v)),
            SetOp::Contains(v) => assert_eq!(subject.contains(&v), model.contains(&v)),
            SetOp::Clear => {
                subject.clear();
                model.clear();
            }
        }
        assert_eq!(subject.size(), model.len());
    }
    let got: StdSet<i64> = subject.snapshot().into_iter().collect();
    assert_eq!(got, model);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hash_set_matches_model(ops in set_ops()) {
        check_set_equivalence(SetChoice::HashSet, ops);
    }

    #[test]
    fn linked_hash_set_matches_model(ops in set_ops()) {
        check_set_equivalence(SetChoice::LinkedHashSet, ops);
    }

    #[test]
    fn array_set_matches_model(ops in set_ops()) {
        check_set_equivalence(SetChoice::ArraySet, ops);
    }

    #[test]
    fn lazy_set_matches_model(ops in set_ops()) {
        check_set_equivalence(SetChoice::LazySet, ops);
    }

    #[test]
    fn size_adapting_set_matches_model(ops in set_ops()) {
        check_set_equivalence(SetChoice::SizeAdapting(4), ops);
    }
}

#[derive(Debug, Clone)]
enum ListOp {
    Add(i64),
    AddAt(usize, i64),
    Get(usize),
    Set(usize, i64),
    RemoveAt(usize),
    RemoveValue(i64),
    RemoveFirst,
    RemoveLast,
    Contains(i64),
    Clear,
}

fn list_ops() -> impl Strategy<Value = Vec<ListOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..50i64).prop_map(ListOp::Add),
            (0..40usize, 0..50i64).prop_map(|(i, v)| ListOp::AddAt(i, v)),
            (0..40usize).prop_map(ListOp::Get),
            (0..40usize, 0..50i64).prop_map(|(i, v)| ListOp::Set(i, v)),
            (0..40usize).prop_map(ListOp::RemoveAt),
            (0..50i64).prop_map(ListOp::RemoveValue),
            Just(ListOp::RemoveFirst),
            Just(ListOp::RemoveLast),
            (0..50i64).prop_map(ListOp::Contains),
            Just(ListOp::Clear),
        ],
        0..120,
    )
}

fn check_list_equivalence(choice: ListChoice, ops: Vec<ListOp>) {
    let f = CollectionFactory::new(Runtime::new(Heap::new()));
    let ctx = {
        let _g = f.enter("prop.ListSite:1");
        f.new_list::<i64>(None).ctx().expect("captured")
    };
    f.policy().lock().set_list(
        ctx,
        Selection {
            choice,
            capacity: None,
        },
    );
    let _g = f.enter("prop.ListSite:1");
    let mut subject = f.new_list::<i64>(None);
    let mut model: Vec<i64> = Vec::new();
    for op in ops {
        match op {
            ListOp::Add(v) => {
                subject.add(v);
                model.push(v);
            }
            ListOp::AddAt(i, v) => {
                if i <= model.len() {
                    subject.add_at(i, v);
                    model.insert(i, v);
                }
            }
            ListOp::Get(i) => assert_eq!(subject.get(i), model.get(i).copied()),
            ListOp::Set(i, v) => {
                let expected = if i < model.len() {
                    Some(std::mem::replace(&mut model[i], v))
                } else {
                    None
                };
                assert_eq!(subject.set(i, v), expected);
            }
            ListOp::RemoveAt(i) => {
                let expected = if i < model.len() {
                    Some(model.remove(i))
                } else {
                    None
                };
                assert_eq!(subject.remove_at(i), expected);
            }
            ListOp::RemoveValue(v) => {
                let expected = model.iter().position(|x| *x == v);
                if let Some(i) = expected {
                    model.remove(i);
                }
                assert_eq!(subject.remove_value(&v), expected.is_some());
            }
            ListOp::RemoveFirst => {
                let expected = if model.is_empty() {
                    None
                } else {
                    Some(model.remove(0))
                };
                assert_eq!(subject.remove_first(), expected);
            }
            ListOp::RemoveLast => {
                assert_eq!(subject.remove_last(), model.pop());
            }
            ListOp::Contains(v) => assert_eq!(subject.contains(&v), model.contains(&v)),
            ListOp::Clear => {
                subject.clear();
                model.clear();
            }
        }
        assert_eq!(subject.size(), model.len());
    }
    assert_eq!(subject.snapshot(), model);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn array_list_matches_model(ops in list_ops()) {
        check_list_equivalence(ListChoice::ArrayList, ops);
    }

    #[test]
    fn linked_list_matches_model(ops in list_ops()) {
        check_list_equivalence(ListChoice::LinkedList, ops);
    }

    #[test]
    fn lazy_array_list_matches_model(ops in list_ops()) {
        check_list_equivalence(ListChoice::LazyArrayList, ops);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Heap accounting invariants under arbitrary small workloads:
    /// used <= live, count consistency, and full reclamation after death.
    #[test]
    fn heap_invariants_under_arbitrary_usage(
        sizes in prop::collection::vec(0..20usize, 1..12),
    ) {
        let f = CollectionFactory::new(Runtime::new(Heap::new()));
        let heap = f.runtime().heap().clone();
        heap.gc();
        let baseline = heap.heap_bytes();

        let _g = f.enter("inv.Site:1");
        let mut handles = Vec::new();
        for (i, n) in sizes.iter().enumerate() {
            let mut m = f.new_map::<i64, i64>(None);
            for k in 0..*n {
                m.put(k as i64, i as i64);
            }
            handles.push(m);
        }
        let cycle = heap.gc();
        prop_assert!(cycle.collection.used <= cycle.collection.live);
        prop_assert!(cycle.collection.live <= cycle.live_bytes);
        prop_assert_eq!(cycle.collection.count as usize, sizes.len());
        // Per-context totals sum to the whole (single context here).
        let per_ctx_live: u64 = cycle.per_context.iter().map(|(_, t)| t.live).sum();
        prop_assert_eq!(per_ctx_live, cycle.collection.live);

        drop(handles);
        heap.gc();
        prop_assert_eq!(heap.heap_bytes(), baseline);
    }

    /// A second GC without intervening mutation reclaims nothing further
    /// and reports identical live data.
    #[test]
    fn gc_is_idempotent(sizes in prop::collection::vec(0..12usize, 1..8)) {
        let f = CollectionFactory::new(Runtime::new(Heap::new()));
        let heap = f.runtime().heap().clone();
        let _g = f.enter("idem.Site:1");
        let mut handles = Vec::new();
        for n in &sizes {
            let mut s = f.new_set::<i64>(None);
            for k in 0..*n {
                s.add(k as i64);
            }
            handles.push(s);
        }
        let first = heap.gc();
        let second = heap.gc();
        prop_assert_eq!(first.live_bytes, second.live_bytes);
        prop_assert_eq!(first.collection.live, second.collection.live);
        prop_assert_eq!(second.swept_bytes, 0);
    }
}
