//! End-to-end tests for the telemetry layer: JSONL decision-audit
//! reconstruction, determinism of simulated results under observation,
//! the zero-allocation disabled path, and the enabled-path overhead bound.

use chameleon_collections::CollectionFactory;
use chameleon_core::{Chameleon, Env, EnvConfig};
use chameleon_telemetry::{json, Telemetry};
use chameleon_workloads::{SizeDist, Synthetic, SyntheticSite};
use std::time::Instant;

fn small_env() -> EnvConfig {
    EnvConfig {
        gc_interval_bytes: Some(32 * 1024),
        ..EnvConfig::default()
    }
}

/// The headline acceptance test: a telemetry-enabled synthetic run emits
/// JSONL from which the rule engine's per-context suggestions can be
/// reconstructed exactly as `chameleon profile` reports them.
#[test]
fn jsonl_reconstructs_profile_suggestions() {
    let w = Synthetic::small_maps(4);

    // Reference: a plain (untraced) profile run, as `chameleon profile`
    // performs it.
    let plain = Chameleon::new().with_profile_config(small_env());
    let plain_report = plain.profile(&w);
    let expected: Vec<String> = plain
        .engine()
        .evaluate(&plain_report)
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert!(!expected.is_empty(), "synthetic must produce suggestions");

    // Traced run.
    let t = Telemetry::new();
    let traced = Chameleon::new()
        .with_profile_config(small_env())
        .with_telemetry(t.clone());
    let report = traced.profile(&w);
    let suggestions = traced.engine().evaluate_traced(&report, Some(&t));
    assert_eq!(suggestions.len(), expected.len());

    let log = t.dump_jsonl();
    let lines = json::validate_jsonl(&log, &["ev", "t"]).expect("log is valid JSONL");
    assert!(lines > 0);

    // Reconstruct the suggestion list from rule_decision events alone.
    let mut reconstructed = Vec::new();
    let mut saw_gc_cycle = false;
    let mut saw_workload_span = false;
    for line in log.lines() {
        let v = json::parse(line).expect("line parses");
        match v.get("ev").and_then(|e| e.as_str()) {
            Some("rule_decision") if v.get("fired").unwrap().as_bool() == Some(true) => {
                reconstructed.push(v.get("suggestion").unwrap().as_str().unwrap().to_owned());
            }
            Some("gc_cycle") => {
                saw_gc_cycle = true;
                for key in [
                    "cycle",
                    "live_bytes",
                    "pause_units",
                    "mark_ns",
                    "shard_scan_ns",
                ] {
                    assert!(v.get(key).is_some(), "gc_cycle missing {key}: {line}");
                }
            }
            Some("workload_begin") | Some("workload_end") => {
                saw_workload_span = true;
                assert_eq!(v.get("name").unwrap().as_str(), Some("synthetic"));
            }
            _ => {}
        }
    }
    assert!(saw_gc_cycle, "expected gc_cycle events:\n{log}");
    assert!(saw_workload_span, "expected workload span events:\n{log}");
    assert_eq!(
        reconstructed, expected,
        "audit log must reconstruct `chameleon profile` suggestions exactly"
    );
}

/// Satellite: defective rule batches surface as one `lint_finding` JSONL
/// event per analyzer diagnostic, carrying severity, code, message, and
/// the 1-based source position of the defect in the submitted batch.
#[test]
fn lint_findings_appear_in_jsonl() {
    use chameleon_collections::Runtime;
    use chameleon_heap::Heap;
    use chameleon_profiler::{ProfileReport, Profiler};
    use chameleon_rules::RuleEngine;

    // A tiny real profile so `evaluate_traced` has contexts to walk.
    let heap = Heap::new();
    let rt = Runtime::new(heap.clone());
    let profiler = Profiler::install(&rt);
    let f = CollectionFactory::new(rt);
    {
        let _g = f.enter("lint.Site:1");
        let mut m = f.new_map::<i64, i64>(None);
        m.put(1, 1);
        heap.gc();
    }
    heap.gc();
    let report = ProfileReport::build(&profiler, &heap);

    // Two seeded defects: an unsatisfiable condition (Error) and a
    // kind-mismatched target (Error). The default Warn mode keeps the
    // batch and records the findings.
    let mut engine = RuleEngine::new();
    engine
        .add_rules(
            "HashMap : maxSize > 32 && maxSize < 16 -> ArrayMap \"Space: never\";\n\
             LinkedList : #get(int) > 4 -> HashMap",
        )
        .expect("warn mode keeps defective batches");

    let t = Telemetry::new();
    engine.evaluate_traced(&report, Some(&t));
    let log = t.dump_jsonl();
    json::validate_jsonl(&log, &["ev", "t"]).expect("log is valid JSONL");

    let mut codes = Vec::new();
    for line in log.lines() {
        let v = json::parse(line).expect("line parses");
        if v.get("ev").and_then(|e| e.as_str()) != Some("lint_finding") {
            continue;
        }
        for key in ["severity", "code", "message"] {
            assert!(
                v.get(key).and_then(|x| x.as_str()).is_some(),
                "lint_finding missing string {key}: {line}"
            );
        }
        let line_no = v.get("line").unwrap().as_u64().unwrap();
        let col_no = v.get("column").unwrap().as_u64().unwrap();
        assert!(line_no >= 1 && col_no >= 1, "positions are 1-based: {line}");
        assert_eq!(v.get("severity").unwrap().as_str(), Some("error"));
        codes.push(v.get("code").unwrap().as_str().unwrap().to_owned());
    }
    codes.sort();
    assert_eq!(
        codes,
        ["kind-mismatch", "unsatisfiable-condition"],
        "expected exactly the two seeded defects:\n{log}"
    );
}

/// Telemetry observes the simulation; it must never perturb it. The same
/// workload produces bit-identical simulated metrics with telemetry
/// enabled, disabled, or absent.
#[test]
fn telemetry_never_perturbs_simulated_results() {
    let w = Synthetic::small_maps(4);
    let run = |telemetry: Option<Telemetry>| {
        let cfg = EnvConfig {
            telemetry,
            ..small_env()
        };
        let env = Env::new(&cfg);
        env.run(&w);
        env.metrics()
    };
    let absent = run(None);
    let disabled = run(Some(Telemetry::disabled()));
    let enabled = run(Some(Telemetry::new()));
    assert_eq!(absent, disabled);
    assert_eq!(absent, enabled);
    assert!(absent.sim_time > 0);
}

/// The disabled path stays allocation-free on the warm capture route
/// (extends the heap's intern-miss assertions across the attach boundary).
#[test]
fn disabled_telemetry_keeps_warm_capture_allocation_free() {
    let cfg = EnvConfig {
        telemetry: Some(Telemetry::disabled()),
        ..small_env()
    };
    let env = Env::new(&cfg);
    let f: &CollectionFactory = &env.factory;
    let _outer = f.enter("Outer.run:1");
    let _inner = f.enter("Hot.site:7");
    let _ = f.capture_context("HashMap"); // warm the intern tables
    let before = env.heap.context_intern_misses();
    for _ in 0..10_000 {
        let _ = f.capture_context("HashMap");
    }
    let after = env.heap.context_intern_misses();
    assert_eq!(before, after, "warm capture must not intern anything");
    let t = env.rt.telemetry().expect("attached");
    assert_eq!(t.event_count(), 0, "disabled telemetry must stay silent");
    assert!(t
        .metrics_snapshot()
        .iter()
        .all(|m| m.value == 0 && m.sum == 0));
}

/// Satellite: the event stream's cycle numbering is coherent — `gc_cycle`
/// events carry a strictly increasing cycle index, and `heap_snapshot`
/// events interleave with them in cycle order (each snapshot follows the
/// `gc_cycle` event of the same cycle, on the profiling cadence).
#[test]
fn gc_cycles_and_snapshots_interleave_in_cycle_order() {
    use chameleon_heap::HeapProfConfig;
    let t = Telemetry::new();
    let cfg = EnvConfig {
        telemetry: Some(t.clone()),
        heapprof: Some(HeapProfConfig { every: 2 }),
        ..small_env()
    };
    let env = Env::new(&cfg);
    env.run(&Synthetic::small_maps(4));

    let log = t.dump_jsonl();
    let mut gc_cycles = Vec::new();
    let mut snapshot_cycles = Vec::new();
    let mut last_gc_cycle = None;
    for line in log.lines() {
        let v = json::parse(line).expect("line parses");
        match v.get("ev").and_then(|e| e.as_str()) {
            Some("gc_cycle") => {
                let c = v.get("cycle").unwrap().as_u64().unwrap();
                gc_cycles.push(c);
                last_gc_cycle = Some(c);
            }
            Some("heap_snapshot") => {
                let c = v.get("cycle").unwrap().as_u64().unwrap();
                assert_eq!(
                    last_gc_cycle,
                    Some(c),
                    "snapshot must directly follow its own cycle's gc_cycle event"
                );
                snapshot_cycles.push(c);
            }
            _ => {}
        }
    }
    assert!(
        gc_cycles.len() >= 2,
        "need several GC cycles, got {gc_cycles:?}"
    );
    assert!(
        gc_cycles.windows(2).all(|w| w[0] < w[1]),
        "gc_cycle index must be strictly increasing: {gc_cycles:?}"
    );
    let expected: Vec<u64> = gc_cycles
        .iter()
        .copied()
        .filter(|c| (c - 1) % 2 == 0)
        .collect();
    assert_eq!(
        snapshot_cycles, expected,
        "snapshots follow the every=2 cadence within the cycle stream"
    );
    // The snapshot counter agrees with the event stream.
    let snaps = t
        .metrics_snapshot()
        .into_iter()
        .find(|m| m.name == "heap.prof.snapshots")
        .expect("snapshot counter registered");
    assert_eq!(snaps.value, snapshot_cycles.len() as u64);
}

/// Satellite: the telemetry layer costs < 5% wall-clock per GC cycle on
/// the same heap (the measurement `bench_gc`'s `telemetry_overhead`
/// section emits). Cycles are interleaved (off, on, off, on, ...) and
/// compared on per-side minima so scheduler noise cancels; retried
/// because CI wall-clock is noisy.
#[test]
fn telemetry_overhead_under_five_percent() {
    // Long-lived collections so every cycle scans real live data and the
    // per-cycle work dwarfs fixed per-run costs.
    let w = Synthetic {
        sites: (0..4)
            .map(|i| SyntheticSite {
                frame: format!("synthetic.Site:{i}"),
                instances: 300,
                sizes: SizeDist::Fixed(8),
                gets_per_instance: 0,
                long_lived: true,
                via_factory: false,
            })
            .collect(),
    };
    let build = |telemetry: Option<Telemetry>| {
        let cfg = EnvConfig {
            telemetry,
            ..small_env()
        };
        let env = Env::new(&cfg);
        env.run(&w);
        env
    };
    let off = build(None);
    let on = build(Some(Telemetry::new()));
    let cycle = |env: &Env| {
        let t0 = Instant::now();
        env.heap.gc();
        t0.elapsed().as_secs_f64()
    };
    // Warm-up once per side.
    cycle(&off);
    cycle(&on);

    let mut best_pct = f64::INFINITY;
    for _attempt in 0..5 {
        let mut min_off = f64::INFINITY;
        let mut min_on = f64::INFINITY;
        for _ in 0..7 {
            min_off = min_off.min(cycle(&off));
            min_on = min_on.min(cycle(&on));
        }
        let pct = 100.0 * (min_on - min_off) / min_off;
        best_pct = best_pct.min(pct);
        if best_pct < 5.0 {
            break;
        }
    }
    assert!(
        best_pct < 5.0,
        "telemetry GC-cycle overhead must stay under 5%, measured {best_pct:.2}%"
    );
}
