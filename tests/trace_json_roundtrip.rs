//! Round-trip properties of the in-tree JSON codec that backs the
//! timeline exporter: control characters survive escaping, deep nesting
//! parses back, and `json::render` is a byte-identical fixed point under
//! re-parsing — both over arbitrary value trees and over real Chrome
//! trace documents rendered from span records.

use chameleon_telemetry::trace::MAX_SPAN_ARGS;
use chameleon_telemetry::{chrome, json, SpanKind, SpanRecord, Tracer};
use json::Value;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[test]
fn control_characters_round_trip_through_escaping() {
    // Every mandatory-escape char (U+0000..U+001F), plus the quote and
    // backslash escapes, in one string.
    let nasty: String = (0u32..0x20)
        .filter_map(char::from_u32)
        .chain(['"', '\\', '/', 'é', '😀'])
        .collect();
    let v = Value::Obj(BTreeMap::from([
        (nasty.clone(), Value::Str(nasty.clone())),
        ("plain".to_owned(), Value::Str("x".to_owned())),
    ]));
    let text = json::render(&v);
    assert!(
        text.contains("\\u0000") && text.contains("\\n") && text.contains("\\\""),
        "escapes missing from {text}"
    );
    let back = json::parse(&text).expect("escaped text parses");
    assert_eq!(back, v);
    assert_eq!(json::render(&back), text, "render is a fixed point");
}

#[test]
fn deeply_nested_documents_round_trip() {
    // 64 alternating array/object levels around a scalar core.
    let mut v = Value::Str("core".to_owned());
    for depth in 0..64 {
        v = if depth % 2 == 0 {
            Value::Arr(vec![v, Value::Num(f64::from(depth))])
        } else {
            Value::Obj(BTreeMap::from([(format!("level{depth}"), v)]))
        };
    }
    let text = json::render(&v);
    let back = json::parse(&text).expect("deep document parses");
    assert_eq!(back, v);
    assert_eq!(json::render(&back), text);
}

#[test]
fn span_names_with_control_characters_export_cleanly() {
    // Names are &'static str, so give the tracer literals that exercise
    // every escape class the exporter must handle.
    let tracer = Tracer::new();
    let lane = tracer.lane(0);
    for name in [
        "quote\"back\\slash",
        "ctl\u{1}\u{1f}\ttab\nnewline",
        "spän-😀",
    ] {
        drop(lane.scope(name));
    }
    let body = chrome::render(&tracer.records());
    let v = json::parse(&body).expect("timeline parses");
    let names: Vec<&str> = v
        .get("traceEvents")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .map(|e| e.get("name").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(
        names,
        [
            "quote\"back\\slash",
            "ctl\u{1}\u{1f}\ttab\nnewline",
            "spän-😀"
        ]
    );
}

/// Arbitrary JSON strings, biased toward the escape-heavy low code points.
fn arb_string() -> BoxedStrategy<String> {
    prop::collection::vec(0u32..0x2000, 0..10)
        .prop_map(|codes| codes.into_iter().filter_map(char::from_u32).collect())
        .boxed()
}

/// Arbitrary value trees up to `depth` levels of arrays/objects.
fn arb_value(depth: u32) -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1_000_000_000_000i64..1_000_000_000_000).prop_map(|n| Value::Num(n as f64)),
        // Raw bit patterns cover subnormals, huge magnitudes, NaN and
        // infinities (the latter render as canonical `null`).
        any::<u64>().prop_map(|bits| Value::Num(f64::from_bits(bits))),
        arb_string().prop_map(Value::Str),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = arb_value(depth - 1);
    prop_oneof![
        leaf,
        prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Arr),
        prop::collection::vec((arb_string(), inner), 0..4)
            .prop_map(|kvs| Value::Obj(kvs.into_iter().collect())),
    ]
    .boxed()
}

/// Arbitrary span records over a small static name/key pool.
fn arb_record() -> BoxedStrategy<SpanRecord> {
    const NAMES: [&str; 4] = ["gc", "worker \"w\"", "merge\\partition", "st\neal"];
    const KEYS: [&str; 4] = ["partition", "shard", "live_objects", "worker"];
    (
        (1u64..1 << 40),
        (0u64..1 << 40),
        (0u32..1_200_000),
        (0u64..1 << 50),
        (0u64..1 << 20),
        (
            0usize..4,
            any::<bool>(),
            prop::collection::vec(any::<u64>(), MAX_SPAN_ARGS),
        ),
    )
        .prop_map(
            |(id, parent, lane, begin_ns, dur_ns, (name, instant, vals))| {
                let mut args = [("", 0u64); MAX_SPAN_ARGS];
                let nargs = (id % (MAX_SPAN_ARGS as u64 + 1)) as u8;
                for (slot, v) in args.iter_mut().zip(vals) {
                    *slot = (KEYS[(v % 4) as usize], v);
                }
                SpanRecord {
                    id,
                    parent,
                    lane,
                    kind: if instant {
                        SpanKind::Instant
                    } else {
                        SpanKind::Complete
                    },
                    begin_ns,
                    end_ns: if instant { begin_ns } else { begin_ns + dur_ns },
                    name: NAMES[name],
                    args,
                    nargs,
                }
            },
        )
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `render` output always parses back to the same value, and a second
    /// render is byte-identical: the canonical form is a fixed point.
    #[test]
    fn render_is_a_fixed_point_under_reparse(v in arb_value(3)) {
        let text = json::render(&v);
        let back = json::parse(&text).unwrap_or_else(|e| panic!("{e}: {text}"));
        let text2 = json::render(&back);
        prop_assert_eq!(&text2, &text, "re-render diverged");
        // And once normalized, parse∘render is the identity on values.
        prop_assert_eq!(json::parse(&text2).unwrap(), back);
    }

    /// Real timeline documents — rendered from arbitrary span records —
    /// are themselves fixed points of the codec.
    #[test]
    fn chrome_documents_reserialize_byte_identically(
        recs in prop::collection::vec(arb_record(), 0..40)
    ) {
        let body = chrome::render(&recs);
        let v = json::parse(&body).unwrap_or_else(|e| panic!("{e}"));
        let canon = json::render(&v);
        prop_assert_eq!(json::render(&json::parse(&canon).unwrap()), canon);
        // Every complete event kept its identity args through the trip.
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let complete = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .count();
        let expected = recs.iter().filter(|r| r.kind == SpanKind::Complete).count();
        prop_assert_eq!(complete, expected);
    }
}
