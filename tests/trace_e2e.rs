//! End-to-end tests for the execution tracing layer: causal spans across
//! the parallel runtime, steal instant-events, Chrome timeline export
//! shape, the bit-identical-under-tracing determinism contract, the
//! per-partition telemetry accounting fix, and the armed-ring overhead
//! bound.

use chameleon_collections::CollectionFactory;
use chameleon_core::{Env, EnvConfig, ParallelConfig, PartitionTask, Workload};
use chameleon_telemetry::trace::GC_SHARD_LANE_BASE;
use chameleon_telemetry::{chrome, json, SpanKind, Telemetry, Tracer};
use chameleon_workloads::{SizeDist, Synthetic, SyntheticSite};
use std::time::Instant;

fn small_env() -> EnvConfig {
    EnvConfig {
        gc_interval_bytes: Some(32 * 1024),
        ..EnvConfig::default()
    }
}

#[test]
fn sequential_run_records_workload_gc_and_stripe_spans() {
    let tracer = Tracer::new();
    let env = Env::new(&EnvConfig {
        tracer: Some(tracer.clone()),
        ..small_env()
    });
    env.run(&Synthetic::small_maps(5));
    let recs = tracer.records();
    for name in [
        "workload",
        "gc",
        "gc_mark",
        "gc_scan",
        "gc_scan_shard",
        "gc_sweep",
        "ctx_stripe_wait",
    ] {
        assert!(
            recs.iter().any(|r| r.name == name),
            "span `{name}` missing from {:?}",
            recs.iter().map(|r| r.name).collect::<Vec<_>>()
        );
    }
    // The environment's spans live on lane 0, and GC nests causally under
    // the workload span.
    let workload = recs.iter().find(|r| r.name == "workload").unwrap();
    assert_eq!(workload.lane, 0);
    let gc = recs.iter().find(|r| r.name == "gc").unwrap();
    assert_eq!(gc.parent, workload.id, "gc runs inside the workload span");
    // Phase spans nest under their gc cycle.
    let mark = recs.iter().find(|r| r.name == "gc_mark").unwrap();
    assert!(
        recs.iter().any(|r| r.name == "gc" && r.id == mark.parent),
        "gc_mark must parent to a gc span"
    );
    // Per-shard scan spans render on synthetic shard lanes, parented to
    // their gc_scan span.
    for shard in recs.iter().filter(|r| r.name == "gc_scan_shard") {
        assert!(shard.lane >= GC_SHARD_LANE_BASE, "lane {}", shard.lane);
        assert!(recs
            .iter()
            .any(|r| r.name == "gc_scan" && r.id == shard.parent));
    }
}

#[test]
fn parallel_timeline_has_worker_lanes_partitions_and_gc_phases() {
    let tracer = Tracer::new();
    let env = Env::new(&EnvConfig {
        tracer: Some(tracer.clone()),
        ..small_env()
    });
    env.run_parallel(&Synthetic::small_maps(8), ParallelConfig::with_threads(4))
        .expect("parallel run");
    let recs = tracer.records();

    // Four distinct worker lanes, each carrying a worker span.
    let worker_lanes: std::collections::BTreeSet<u32> = recs
        .iter()
        .filter(|r| r.name == "worker")
        .map(|r| r.lane)
        .collect();
    assert!(
        worker_lanes.len() >= 4,
        "expected >= 4 worker lanes, got {worker_lanes:?}"
    );
    assert!(worker_lanes.iter().all(|l| (1..=4).contains(l)));

    // One partition span per partition, each wrapping adopted GC work.
    let partitions: Vec<_> = recs.iter().filter(|r| r.name == "partition").collect();
    assert_eq!(partitions.len(), 4);
    for p in &partitions {
        assert!(
            recs.iter().any(|r| r.name == "gc" && r.parent == p.id),
            "partition {} has no adopted gc span",
            p.id
        );
    }

    // Orchestration and phase spans are all present.
    for name in [
        "run_parallel",
        "merge_partition",
        "gc_mark",
        "gc_scan",
        "gc_scan_shard",
        "gc_sweep",
    ] {
        assert!(recs.iter().any(|r| r.name == name), "span `{name}` missing");
    }

    // The rendered timeline is Perfetto-shaped: every complete event has
    // ts/dur/pid/tid and per-lane spans are well-parenthesized.
    let body = chrome::render(&recs);
    let v = json::parse(&body).expect("timeline parses");
    let events = v.get("traceEvents").unwrap().as_arr().unwrap();
    let mut stacks: std::collections::HashMap<u64, Vec<f64>> = std::collections::HashMap::new();
    for e in events {
        match e.get("ph").unwrap().as_str().unwrap() {
            "X" => {
                let tid = e.get("tid").unwrap().as_u64().unwrap();
                let ts = e.get("ts").unwrap().as_f64().unwrap();
                let dur = e.get("dur").unwrap().as_f64().unwrap();
                assert!(e.get("pid").unwrap().as_u64().is_some());
                let stack = stacks.entry(tid).or_default();
                while let Some(&end) = stack.last() {
                    if ts >= end {
                        stack.pop();
                    } else {
                        // Nested spans must close before their parent.
                        assert!(
                            ts + dur <= end + 1e-9,
                            "lane {tid}: span [{ts}, {}) escapes its parent (ends {end})",
                            ts + dur
                        );
                        break;
                    }
                }
                stack.push(ts + dur);
            }
            "i" | "M" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
}

/// A workload whose partition plan is deliberately skewed: one worker's
/// block is trivial while the other's is heavy, so the fast worker drains
/// its queue and must steal.
struct Skewed;

fn skewed_site(f: &CollectionFactory, heavy: bool) {
    let _g = f.enter("Skewed.site:1");
    let rounds = if heavy { 400 } else { 1 };
    for _ in 0..rounds {
        let mut m = f.new_map::<i64, i64>(None);
        for i in 0..32 {
            m.put(i, i);
        }
    }
}

impl Workload for Skewed {
    fn name(&self) -> &'static str {
        "skewed"
    }
    fn run(&self, f: &CollectionFactory) {
        for p in 0..6 {
            skewed_site(f, p >= 3);
        }
    }
    fn partitions(&self, _parts: usize) -> Option<Vec<PartitionTask>> {
        // Worker 0's block (partitions 0..3) is trivial; worker 1's block
        // (3..6) is heavy, so worker 0 steals from the back of it.
        Some(
            (0..6)
                .map(|p| {
                    PartitionTask::new(format!("skewed[{p}]"), move |f| skewed_site(f, p >= 3))
                })
                .collect(),
        )
    }
}

#[test]
fn skewed_partition_plans_emit_steal_instants() {
    // Scheduling-dependent, so retry: with a 400x work skew the fast
    // worker all but certainly steals at least once per attempt.
    for attempt in 0..5 {
        let tracer = Tracer::new();
        let env = Env::new(&EnvConfig {
            tracer: Some(tracer.clone()),
            ..small_env()
        });
        env.run_parallel(
            &Skewed,
            ParallelConfig {
                partitions: 6,
                threads: 2,
            },
        )
        .expect("parallel run");
        let recs = tracer.records();
        let steals: Vec<_> = recs.iter().filter(|r| r.name == "steal").collect();
        if !steals.is_empty() {
            for s in &steals {
                assert_eq!(s.kind, SpanKind::Instant);
                let &(key, partition) = s.key_values().first().expect("partition arg");
                assert_eq!(key, "partition");
                assert!(partition < 6);
            }
            return;
        }
        eprintln!("attempt {attempt}: no steal observed, retrying");
    }
    panic!("no steal instant-event in 5 attempts of a 400x-skewed plan");
}

#[test]
fn results_bit_identical_with_tracing_absent_armed_exporting() {
    let run_seq = |tracer: Option<Tracer>| {
        let env = Env::new(&EnvConfig {
            tracer,
            ..small_env()
        });
        env.run(&Synthetic::small_maps(6));
        (env.metrics(), env.report().to_json(), env.heap.cycles())
    };
    let run_par = |tracer: Option<Tracer>| {
        let env = Env::new(&EnvConfig {
            tracer,
            ..small_env()
        });
        env.run_parallel(
            &Synthetic::small_maps(6),
            ParallelConfig {
                partitions: 3,
                threads: 2,
            },
        )
        .expect("parallel run");
        (env.metrics(), env.report().to_json(), env.heap.cycles())
    };

    for run in [&run_seq as &dyn Fn(Option<Tracer>) -> _, &run_par] {
        let absent = run(None);
        let armed = run(Some(Tracer::new()));
        assert_eq!(absent, armed, "armed tracer must not perturb results");

        let exporting = Tracer::new();
        let with_export = run(Some(exporting.clone()));
        // Exporting happens after the run; it must also change nothing.
        let body = chrome::render(&exporting.records());
        json::parse(&body).expect("export parses");
        assert_eq!(absent, with_export, "exporting must not perturb results");
    }
}

#[test]
fn partition_event_counts_sum_to_parent_totals() {
    let t = Telemetry::new();
    t.set_enabled(true);
    let env = Env::new(&EnvConfig {
        telemetry: Some(t.clone()),
        ..small_env()
    });
    env.run_parallel(&Synthetic::small_maps(8), ParallelConfig::with_threads(4))
        .expect("parallel run");
    let m = env.metrics();

    let mut partitions = 0u64;
    let (mut cycles, mut ops, mut bytes, mut objects, mut captures) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for line in t.drain_events().lines() {
        let v = json::parse(line).expect("event parses");
        if v.get("ev").and_then(|e| e.as_str()) == Some("mutator_partition") {
            partitions += 1;
            let field = |k: &str| {
                v.get(k)
                    .and_then(|x| x.as_u64())
                    .unwrap_or_else(|| panic!("{k} missing: {line}"))
            };
            cycles += field("cycles");
            ops += field("ops");
            bytes += field("allocated_bytes");
            objects += field("allocated_objects");
            captures += field("captures");
        }
    }
    assert_eq!(partitions, 4, "one event per partition");
    // The parent performs no GC of its own in the parallel path, so its
    // totals are exactly the sums over partitions.
    assert_eq!(cycles, m.gc_count, "per-partition GC cycle counts");
    assert_eq!(bytes, m.total_allocated_bytes);
    assert_eq!(objects, m.total_allocated_objects);
    assert_eq!(captures, m.capture_count);
    let parent_ops: u64 = env
        .profiler
        .as_ref()
        .expect("profiling env")
        .traces()
        .iter()
        .map(|(_, trace)| trace.all_ops_total())
        .sum();
    assert_eq!(ops, parent_ops, "per-partition op counts");
}

#[test]
fn armed_tracing_overhead_under_five_percent() {
    // Long-lived collections so every cycle scans real live data and the
    // per-cycle work dwarfs fixed per-run costs.
    let w = Synthetic {
        sites: (0..4)
            .map(|i| SyntheticSite {
                frame: format!("synthetic.Site:{i}"),
                instances: 300,
                sizes: SizeDist::Fixed(8),
                gets_per_instance: 0,
                long_lived: true,
                via_factory: false,
            })
            .collect(),
    };
    let build = |tracer: Option<Tracer>| {
        let cfg = EnvConfig {
            tracer,
            ..small_env()
        };
        let env = Env::new(&cfg);
        env.run(&w);
        env
    };
    let off = build(None);
    let on = build(Some(Tracer::new()));
    let cycle = |env: &Env| {
        let t0 = Instant::now();
        env.heap.gc();
        t0.elapsed().as_secs_f64()
    };
    // Warm-up once per side.
    cycle(&off);
    cycle(&on);

    let mut best_pct = f64::INFINITY;
    for _attempt in 0..5 {
        let mut min_off = f64::INFINITY;
        let mut min_on = f64::INFINITY;
        for _ in 0..7 {
            min_off = min_off.min(cycle(&off));
            min_on = min_on.min(cycle(&on));
        }
        let pct = 100.0 * (min_on - min_off) / min_off;
        best_pct = best_pct.min(pct);
        if best_pct < 5.0 {
            break;
        }
    }
    assert!(
        best_pct < 5.0,
        "armed-tracing GC-cycle overhead must stay under 5%, measured {best_pct:.2}%"
    );
}
