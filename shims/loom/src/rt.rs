//! Model-checking runtime: cooperative scheduler, DFS schedule explorer,
//! C11-style weak-memory store histories and vector-clock race detection.
//!
//! One [`Rt`] instance lives per *execution* (one explored schedule). Real
//! OS threads run the model code, serialized by a token: exactly one
//! thread is `active` at any moment, and every visible operation passes
//! through [`Rt::op`], which performs the operation under the state lock
//! and then picks which thread runs next. Each pick — and each choice of
//! which store a load observes — is recorded as a [`Branch`]; after the
//! execution finishes the driver advances the deepest incomplete branch
//! and replays, depth-first, until the tree is exhausted.

use std::any::Any;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};

/// Maximum model threads per execution (including the body thread).
pub(crate) const MAX_THREADS: usize = 8;

/// How many of the newest coherence-eligible stores a relaxed/acquire load
/// may observe. One stale generation is enough to exhibit every
/// missing-fence bug the kernels can have; a wider window only multiplies
/// the schedule count.
const ELIGIBLE_WINDOW: usize = 3;

/// Vector clock: one component per model thread.
pub(crate) type VClock = [u32; MAX_THREADS];

fn join(dst: &mut VClock, src: &VClock) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = (*d).max(*s);
    }
}

/// Sentinel panic payload used to unwind a thread out of an aborted
/// schedule. Never reported as a model failure.
pub(crate) struct AbortSchedule;

fn panic_message(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

// ---------------------------------------------------------------------------
// Thread-local model context
// ---------------------------------------------------------------------------

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Rt>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// Whether the calling OS thread is currently a model thread.
pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

pub(crate) fn ctx() -> Option<(Arc<Rt>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(rt: Arc<Rt>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((rt, tid)));
}

fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

/// One recorded decision: `chosen` out of `total` alternatives. `total ==
/// 1` marks forced or pruned points that DFS never revisits.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Branch {
    chosen: usize,
    total: usize,
}

/// One store in a location's history.
#[derive(Clone)]
struct Store {
    value: u64,
    tid: usize,
    /// The storing thread's own clock component at store time; `clock[tid]
    /// >= stamp` means the store is in the observer's causal past.
    stamp: u32,
    /// Clock an acquire-load of this store joins (release store: the full
    /// clock; relaxed store: the clock at the last release fence).
    rel: VClock,
}

struct LocState {
    stores: Vec<Store>,
    /// Per-thread index of the newest observed store (coherence floor).
    last_seen: [usize; MAX_THREADS],
}

/// FastTrack-style access epochs for one `UnsafeCell`.
#[derive(Default)]
struct CellState {
    write: Option<(usize, u32)>,
    reads: [u32; MAX_THREADS],
}

#[derive(Default)]
struct MutexState {
    owner: Option<usize>,
    /// Join of every past releaser's clock; the next owner acquires it.
    release: VClock,
}

#[derive(Default)]
struct RwState {
    writer: Option<usize>,
    readers: Vec<usize>,
    release: VClock,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Block {
    Mutex(usize),
    Rw(usize),
    Join(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Status {
    Ready,
    Blocked(Block),
    Finished,
}

struct ThreadState {
    status: Status,
    clock: VClock,
    /// Clock snapshot at the last `fence(Release)`; attached to subsequent
    /// relaxed stores.
    rel_fence: VClock,
    /// Accumulated release clocks of relaxed loads; joined into the clock
    /// at the next `fence(Acquire)`.
    acq_pending: VClock,
}

pub(crate) struct RtState {
    threads: Vec<ThreadState>,
    active: usize,
    path: Vec<Branch>,
    prefix: Vec<Branch>,
    preemptions: usize,
    preemption_bound: usize,
    locations: Vec<LocState>,
    cells: Vec<CellState>,
    mutexes: Vec<MutexState>,
    rwlocks: Vec<RwState>,
    failure: Option<String>,
    seen: HashSet<u64>,
    prune: bool,
    pruned: u64,
    ops_total: u64,
    max_ops: u64,
}

impl RtState {
    fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
    }

    /// Records one decision with `total` alternatives, following the replay
    /// prefix when still inside it. Returns the chosen index.
    fn decide(&mut self, total: usize) -> usize {
        if total <= 1 {
            return 0;
        }
        let at = self.path.len();
        if at < self.prefix.len() {
            let b = self.prefix[at];
            if b.total != total {
                self.fail(format!(
                    "internal: schedule replay diverged at decision {at} \
                     (recorded {} alternatives, now {total}); the model body \
                     must be deterministic apart from scheduling",
                    b.total
                ));
                self.path.push(Branch { chosen: 0, total });
                return 0;
            }
            self.path.push(b);
            b.chosen
        } else {
            self.path.push(Branch { chosen: 0, total });
            0
        }
    }

    /// Records a scheduling decision. Unlike [`RtState::decide`], replay
    /// takes the recorded branch verbatim without re-deriving the
    /// alternative count: whether a point was forced (preemption budget)
    /// or pruned (seen state) depends on sets that differ between
    /// executions, but the recorded branch is always valid to follow.
    fn decide_sched(&mut self, total: usize) -> usize {
        let at = self.path.len();
        if at < self.prefix.len() {
            let b = self.prefix[at];
            self.path.push(b);
            b.chosen
        } else {
            self.path.push(Branch { chosen: 0, total });
            0
        }
    }

    /// Hash of the scheduler-visible state, used to prune already-seen
    /// states. Cross-thread clock components are deliberately excluded
    /// (they encode history, which would defeat pruning), so pruning is a
    /// heuristic: it can skip interleavings whose only difference is the
    /// happens-before relation. Disable it via `Builder::state_pruning`
    /// when exhaustiveness matters more than speed.
    fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.active.hash(&mut h);
        self.preemptions.hash(&mut h);
        for (i, t) in self.threads.iter().enumerate() {
            t.status.hash(&mut h);
            t.clock[i].hash(&mut h);
        }
        for l in &self.locations {
            l.stores.len().hash(&mut h);
            if let Some(s) = l.stores.last() {
                s.value.hash(&mut h);
            }
            l.last_seen.hash(&mut h);
        }
        for c in &self.cells {
            c.write.hash(&mut h);
            c.reads.hash(&mut h);
        }
        for m in &self.mutexes {
            m.owner.hash(&mut h);
        }
        for r in &self.rwlocks {
            r.writer.hash(&mut h);
            r.readers.hash(&mut h);
        }
        h.finish()
    }

    fn all_finished(&self) -> bool {
        self.threads
            .iter()
            .all(|t| matches!(t.status, Status::Finished))
    }

    // --- registration -----------------------------------------------------

    fn register_thread(&mut self, parent: usize) -> usize {
        let tid = self.threads.len();
        assert!(
            tid < MAX_THREADS,
            "model supports at most {MAX_THREADS} threads"
        );
        let clock = self.threads[parent].clock;
        self.threads.push(ThreadState {
            status: Status::Ready,
            clock,
            rel_fence: [0; MAX_THREADS],
            acq_pending: [0; MAX_THREADS],
        });
        tid
    }

    fn register_loc(&mut self, init: u64, me: usize) -> usize {
        let id = self.locations.len();
        let t = &self.threads[me];
        self.locations.push(LocState {
            stores: vec![Store {
                value: init,
                tid: me,
                stamp: t.clock[me],
                rel: t.clock,
            }],
            last_seen: [0; MAX_THREADS],
        });
        id
    }

    // --- atomics ----------------------------------------------------------

    fn load_reads_acquire(&mut self, me: usize, order: Ordering, rel: VClock) {
        let t = &mut self.threads[me];
        match order {
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst => join(&mut t.clock, &rel),
            _ => join(&mut t.acq_pending, &rel),
        }
    }

    fn atomic_load(&mut self, loc: usize, order: Ordering, me: usize) -> u64 {
        let n = self.locations[loc].stores.len();
        let lo = if matches!(order, Ordering::SeqCst) {
            n - 1
        } else {
            // Coherence floor: never older than already observed, never
            // older than a store that happens-before this load.
            let clock = self.threads[me].clock;
            let l = &self.locations[loc];
            let mut floor = l.last_seen[me];
            for (j, s) in l.stores.iter().enumerate().skip(floor + 1) {
                if clock[s.tid] >= s.stamp {
                    floor = j;
                }
            }
            floor.max(n.saturating_sub(ELIGIBLE_WINDOW))
        };
        // Choice 0 reads the newest store, so the first DFS path is the
        // sequentially-consistent execution.
        let pick = self.decide(n - lo);
        let idx = n - 1 - pick;
        self.locations[loc].last_seen[me] = idx;
        let s = self.locations[loc].stores[idx].clone();
        self.load_reads_acquire(me, order, s.rel);
        s.value
    }

    fn store_rel_clock(&self, me: usize, order: Ordering) -> VClock {
        let t = &self.threads[me];
        match order {
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst => t.clock,
            _ => t.rel_fence,
        }
    }

    fn atomic_store(&mut self, loc: usize, value: u64, order: Ordering, me: usize) {
        let rel = self.store_rel_clock(me, order);
        let stamp = self.threads[me].clock[me];
        let l = &mut self.locations[loc];
        l.last_seen[me] = l.stores.len();
        l.stores.push(Store {
            value,
            tid: me,
            stamp,
            rel,
        });
    }

    fn atomic_rmw(
        &mut self,
        loc: usize,
        order: Ordering,
        me: usize,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        // Atomicity: an RMW always reads the latest store.
        let prev = self.locations[loc].stores.last().unwrap().clone();
        self.load_reads_acquire(me, order, prev.rel);
        // Release-sequence continuation: the new store carries the read
        // store's release clock in addition to its own.
        let mut rel = self.store_rel_clock(me, order);
        join(&mut rel, &prev.rel);
        let stamp = self.threads[me].clock[me];
        let l = &mut self.locations[loc];
        l.last_seen[me] = l.stores.len();
        l.stores.push(Store {
            value: f(prev.value),
            tid: me,
            stamp,
            rel,
        });
        prev.value
    }

    fn fence(&mut self, order: Ordering, me: usize) {
        let t = &mut self.threads[me];
        if matches!(
            order,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        ) {
            let pending = t.acq_pending;
            join(&mut t.clock, &pending);
        }
        if matches!(
            order,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        ) {
            t.rel_fence = t.clock;
        }
    }

    // --- UnsafeCell race detection ---------------------------------------

    fn cell_access(&mut self, cell: usize, write: bool, me: usize) {
        let clock = self.threads[me].clock;
        let c = &mut self.cells[cell];
        if let Some((t, stamp)) = c.write {
            if t != me && clock[t] < stamp {
                self.fail(format!(
                    "data race: thread {me} {} UnsafeCell #{cell} concurrently \
                     with thread {t}'s write (no happens-before edge)",
                    if write { "writes" } else { "reads" }
                ));
                return;
            }
        }
        if write {
            for (u, c_read) in c.reads.iter().enumerate() {
                if u != me && *c_read > clock[u] {
                    self.fail(format!(
                        "data race: thread {me} writes UnsafeCell #{cell} \
                         concurrently with thread {u}'s read (no happens-before edge)"
                    ));
                    return;
                }
            }
            c.write = Some((me, clock[me]));
            c.reads = [0; MAX_THREADS];
        } else {
            c.reads[me] = clock[me];
        }
    }
}

// ---------------------------------------------------------------------------
// The runtime proper
// ---------------------------------------------------------------------------

pub(crate) struct Rt {
    state: Mutex<RtState>,
    cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Rt {
    fn new(b: &Builder, prefix: Vec<Branch>, seen: HashSet<u64>) -> Rt {
        Rt {
            state: Mutex::new(RtState {
                threads: vec![ThreadState {
                    status: Status::Ready,
                    clock: [0; MAX_THREADS],
                    rel_fence: [0; MAX_THREADS],
                    acq_pending: [0; MAX_THREADS],
                }],
                active: 0,
                path: Vec::new(),
                prefix,
                preemptions: 0,
                preemption_bound: b.preemption_bound,
                locations: Vec::new(),
                cells: Vec::new(),
                mutexes: Vec::new(),
                rwlocks: Vec::new(),
                failure: None,
                seen,
                prune: b.state_pruning,
                pruned: 0,
                ops_total: 0,
                max_ops: b.max_ops,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, RtState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn abort(&self, st: MutexGuard<'_, RtState>) -> ! {
        self.cv.notify_all();
        drop(st);
        panic::panic_any(AbortSchedule);
    }

    /// Executes one visible operation under the token discipline: wait for
    /// the token, advance the clock, run `f` against the state, then pick
    /// the next thread to run. Panics with [`AbortSchedule`] when the
    /// schedule has failed.
    pub(crate) fn op<R>(self: &Arc<Self>, f: impl FnOnce(&mut RtState, usize) -> R) -> R {
        let (_, me) = ctx().expect("model operation outside a model thread");
        let mut st = self.lock_state();
        let mut dead = false;
        loop {
            if st.failure.is_some() {
                // A panicking thread must not panic again from a drop-path
                // operation (that would abort the process): once the
                // schedule has failed, run its remaining drop-path ops
                // unscheduled — the execution's results are discarded.
                if std::thread::panicking() {
                    dead = true;
                    break;
                }
                self.abort(st);
            }
            if st.active == me {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.threads[me].clock[me] += 1;
        st.ops_total += 1;
        if st.ops_total > st.max_ops {
            let cap = st.max_ops;
            st.fail(format!(
                "model execution exceeded {cap} operations; the body likely \
                 spins on a condition the scheduler never satisfies"
            ));
        }
        let r = f(&mut st, me);
        if dead {
            self.cv.notify_all();
            drop(st);
            return r;
        }
        if st.failure.is_some() {
            self.abort(st);
        }
        self.pick_next(&mut st, me);
        self.cv.notify_all();
        drop(st);
        r
    }

    /// Chooses which thread performs the next operation. A switch away
    /// from a still-runnable thread consumes preemption budget; with the
    /// budget exhausted the current thread keeps running.
    fn pick_next(&self, st: &mut RtState, me: usize) {
        let me_ready = matches!(st.threads[me].status, Status::Ready);
        // Candidate order: current thread first (choice 0 = run on), then
        // the rest by id, so the first DFS path is the no-preemption one.
        let mut candidates: Vec<usize> = Vec::new();
        if me_ready {
            candidates.push(me);
        }
        for (i, t) in st.threads.iter().enumerate() {
            if i != me && matches!(t.status, Status::Ready) {
                candidates.push(i);
            }
        }
        if candidates.is_empty() {
            if st
                .threads
                .iter()
                .any(|t| matches!(t.status, Status::Blocked(_)))
            {
                let waits: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| match t.status {
                        Status::Blocked(b) => Some(format!("thread {i} on {b:?}")),
                        _ => None,
                    })
                    .collect();
                st.fail(format!("deadlock: {}", waits.join(", ")));
            }
            return;
        }
        let forced = me_ready && st.preemptions >= st.preemption_bound;
        let mut total = candidates.len();
        if forced {
            total = 1;
        } else if total > 1 && st.prune && st.path.len() >= st.prefix.len() {
            let fp = st.fingerprint();
            if !st.seen.insert(fp) {
                st.pruned += 1;
                total = 1;
            }
        }
        let chosen = st.decide_sched(total);
        let next = candidates[chosen.min(candidates.len() - 1)];
        if next != me && me_ready {
            st.preemptions += 1;
        }
        st.active = next;
    }

    // --- blocking primitives ---------------------------------------------

    pub(crate) fn mutex_lock(self: &Arc<Self>, id: usize) {
        loop {
            let acquired = self.op(|st, me| {
                if st.mutexes[id].owner.is_none() {
                    st.mutexes[id].owner = Some(me);
                    let rel = st.mutexes[id].release;
                    join(&mut st.threads[me].clock, &rel);
                    true
                } else {
                    st.threads[me].status = Status::Blocked(Block::Mutex(id));
                    false
                }
            });
            if acquired {
                return;
            }
        }
    }

    pub(crate) fn mutex_try_lock(self: &Arc<Self>, id: usize) -> bool {
        self.op(|st, me| {
            if st.mutexes[id].owner.is_none() {
                st.mutexes[id].owner = Some(me);
                let rel = st.mutexes[id].release;
                join(&mut st.threads[me].clock, &rel);
                true
            } else {
                false
            }
        })
    }

    pub(crate) fn mutex_unlock(self: &Arc<Self>, id: usize) {
        self.op(|st, me| {
            debug_assert_eq!(st.mutexes[id].owner, Some(me));
            st.mutexes[id].owner = None;
            let clock = st.threads[me].clock;
            join(&mut st.mutexes[id].release, &clock);
            wake(st, Block::Mutex(id));
        });
    }

    pub(crate) fn rw_lock(self: &Arc<Self>, id: usize, write: bool) {
        loop {
            let acquired = self.op(|st, me| {
                let free = if write {
                    st.rwlocks[id].writer.is_none() && st.rwlocks[id].readers.is_empty()
                } else {
                    st.rwlocks[id].writer.is_none()
                };
                if free {
                    if write {
                        st.rwlocks[id].writer = Some(me);
                    } else {
                        st.rwlocks[id].readers.push(me);
                    }
                    let rel = st.rwlocks[id].release;
                    join(&mut st.threads[me].clock, &rel);
                    true
                } else {
                    st.threads[me].status = Status::Blocked(Block::Rw(id));
                    false
                }
            });
            if acquired {
                return;
            }
        }
    }

    pub(crate) fn rw_unlock(self: &Arc<Self>, id: usize, write: bool) {
        self.op(|st, me| {
            if write {
                debug_assert_eq!(st.rwlocks[id].writer, Some(me));
                st.rwlocks[id].writer = None;
            } else {
                st.rwlocks[id].readers.retain(|&r| r != me);
            }
            let clock = st.threads[me].clock;
            join(&mut st.rwlocks[id].release, &clock);
            wake(st, Block::Rw(id));
        });
    }

    pub(crate) fn join_thread(self: &Arc<Self>, tid: usize) {
        loop {
            let done = self.op(|st, me| {
                if matches!(st.threads[tid].status, Status::Finished) {
                    let c = st.threads[tid].clock;
                    join(&mut st.threads[me].clock, &c);
                    true
                } else {
                    st.threads[me].status = Status::Blocked(Block::Join(tid));
                    false
                }
            });
            if done {
                return;
            }
        }
    }

    /// Marks `tid` finished. Consumes the thread's panic payload, if any:
    /// a real panic fails the schedule, the [`AbortSchedule`] sentinel does
    /// not.
    fn finish_thread(self: &Arc<Self>, tid: usize, payload: Option<Box<dyn Any + Send>>) {
        let mut st = self.lock_state();
        if let Some(p) = payload {
            if p.downcast_ref::<AbortSchedule>().is_none() {
                let msg = panic_message(p.as_ref());
                st.fail(format!("thread {tid} panicked: {msg}"));
            }
        }
        loop {
            if st.failure.is_some() {
                st.threads[tid].status = Status::Finished;
                self.cv.notify_all();
                return;
            }
            if st.active == tid {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.threads[tid].status = Status::Finished;
        wake(&mut st, Block::Join(tid));
        self.pick_next(&mut st, tid);
        self.cv.notify_all();
    }
}

fn wake(st: &mut RtState, reason: Block) {
    for t in st.threads.iter_mut() {
        if t.status == Status::Blocked(reason) {
            t.status = Status::Ready;
        }
    }
}

// ---------------------------------------------------------------------------
// Public helpers used by sync/cell/thread modules
// ---------------------------------------------------------------------------

/// Lazily resolves an object's runtime id through `slot` (0 = not yet
/// registered, otherwise id + 1), registering inside a single scheduled op
/// the first time. Registration must not go through a blocking std
/// primitive such as `OnceLock::get_or_init`: the initializer would perform
/// a scheduling op and deschedule mid-initialization, and a second model
/// thread reaching the same `OnceLock` then blocks at OS level while
/// holding the scheduler token — deadlocking the whole run. The sentinel
/// plus the in-op double check serializes racing registrations through the
/// scheduler instead.
fn lazy_id(
    slot: &std::sync::atomic::AtomicUsize,
    register: impl FnOnce(&mut RtState, usize) -> usize,
) -> Option<usize> {
    let (rt, _) = ctx()?;
    match slot.load(Ordering::Relaxed) {
        0 => Some(rt.op(|st, me| match slot.load(Ordering::Relaxed) {
            0 => {
                let id = register(st, me);
                slot.store(id + 1, Ordering::Relaxed);
                id
            }
            n => n - 1,
        })),
        n => Some(n - 1),
    }
}

pub(crate) fn lazy_loc(
    slot: &std::sync::atomic::AtomicUsize,
    init: impl FnOnce() -> u64,
) -> Option<usize> {
    lazy_id(slot, |st, me| st.register_loc(init(), me))
}

pub(crate) fn lazy_mutex(slot: &std::sync::atomic::AtomicUsize) -> Option<usize> {
    lazy_id(slot, |st, _| {
        st.mutexes.push(MutexState::default());
        st.mutexes.len() - 1
    })
}

pub(crate) fn lazy_rwlock(slot: &std::sync::atomic::AtomicUsize) -> Option<usize> {
    lazy_id(slot, |st, _| {
        st.rwlocks.push(RwState::default());
        st.rwlocks.len() - 1
    })
}

pub(crate) fn lazy_cell(slot: &std::sync::atomic::AtomicUsize) -> Option<usize> {
    lazy_id(slot, |st, _| {
        st.cells.push(CellState::default());
        st.cells.len() - 1
    })
}

pub(crate) fn load(loc: usize, order: Ordering) -> u64 {
    let (rt, _) = ctx().expect("model atomic used outside a model run");
    rt.op(|st, me| st.atomic_load(loc, order, me))
}

pub(crate) fn store(loc: usize, value: u64, order: Ordering) {
    let (rt, _) = ctx().expect("model atomic used outside a model run");
    rt.op(|st, me| st.atomic_store(loc, value, order, me));
}

pub(crate) fn rmw(loc: usize, order: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
    let (rt, _) = ctx().expect("model atomic used outside a model run");
    rt.op(|st, me| st.atomic_rmw(loc, order, me, f))
}

pub(crate) fn fence(order: Ordering) {
    if let Some((rt, _)) = ctx() {
        rt.op(|st, me| st.fence(order, me));
    } else {
        std::sync::atomic::fence(order);
    }
}

pub(crate) fn cell_access(cell: usize, write: bool) {
    let (rt, _) = ctx().expect("model cell used outside a model run");
    rt.op(|st, me| st.cell_access(cell, write, me));
}

/// A scheduling point without any memory effect: used for racy-by-design
/// reads (seqlock readers) and `thread::yield_now`.
pub(crate) fn yield_point() {
    let (rt, _) = ctx().expect("model yield outside a model run");
    rt.op(|_, _| ());
}

pub(crate) fn lock_mutex(id: usize) {
    let (rt, _) = ctx().expect("model mutex used outside a model run");
    rt.mutex_lock(id);
}

pub(crate) fn try_lock_mutex(id: usize) -> bool {
    let (rt, _) = ctx().expect("model mutex used outside a model run");
    rt.mutex_try_lock(id)
}

pub(crate) fn unlock_mutex(id: usize) {
    let (rt, _) = ctx().expect("model mutex used outside a model run");
    rt.mutex_unlock(id);
}

pub(crate) fn lock_rw(id: usize, write: bool) {
    let (rt, _) = ctx().expect("model rwlock used outside a model run");
    rt.rw_lock(id, write);
}

pub(crate) fn unlock_rw(id: usize, write: bool) {
    let (rt, _) = ctx().expect("model rwlock used outside a model run");
    rt.rw_unlock(id, write);
}

/// Spawns a model thread running `f`; returns its tid. Used by
/// `thread::spawn` (which also wires the result slot).
pub(crate) fn spawn_model(f: impl FnOnce() + Send + 'static) -> usize {
    let (rt, _) = ctx().expect("spawn_model outside a model run");
    let tid = rt.op(|st, me| st.register_thread(me));
    let rt2 = Arc::clone(&rt);
    let handle = std::thread::spawn(move || {
        set_ctx(Arc::clone(&rt2), tid);
        let out = panic::catch_unwind(AssertUnwindSafe(f));
        rt2.finish_thread(tid, out.err());
        clear_ctx();
    });
    rt.handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(handle);
    tid
}

pub(crate) fn join_model(tid: usize) {
    let (rt, _) = ctx().expect("join outside a model run");
    rt.join_thread(tid);
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Exploration statistics returned by [`Builder::check`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Report {
    /// Distinct schedules executed to completion.
    pub schedules: u64,
    /// Scheduling points where a previously seen state suppressed
    /// branching.
    pub pruned: u64,
}

/// Configures and runs a bounded model check.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum voluntary context switches away from a runnable thread per
    /// execution. 2–3 catches virtually all mutual-exclusion and ordering
    /// bugs; each increment multiplies the schedule count.
    pub preemption_bound: usize,
    /// Hard cap on explored schedules (safety valve, not a target).
    pub max_schedules: u64,
    /// Per-execution operation budget; exceeding it fails the check
    /// (catches schedules that livelock).
    pub max_ops: u64,
    /// Seen-state hash pruning (see `RtState::fingerprint`). On by
    /// default; switch off to force a fully exhaustive bounded search.
    pub state_pruning: bool,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: 2,
            max_schedules: 500_000,
            max_ops: 100_000,
            state_pruning: true,
        }
    }
}

/// Computes the next DFS prefix: advance the deepest incomplete decision,
/// dropping everything beneath it. `None` when the tree is exhausted.
fn advance(mut path: Vec<Branch>) -> Option<Vec<Branch>> {
    while let Some(b) = path.pop() {
        if b.chosen + 1 < b.total {
            path.push(Branch {
                chosen: b.chosen + 1,
                total: b.total,
            });
            return Some(path);
        }
    }
    None
}

/// Silences the default panic printer on model threads: expected contract
/// panics and schedule aborts fire on every explored schedule, and the
/// driver reports real failures itself.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !in_model() {
                prev(info);
            }
        }));
    });
}

impl Builder {
    /// Runs `body` once per schedule until the DFS tree is exhausted.
    ///
    /// # Panics
    ///
    /// Panics with the failing schedule's diagnostic when any schedule
    /// detects a data race, deadlock, divergence, or a model-thread panic.
    pub fn check<F>(&self, body: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        assert!(
            !in_model(),
            "nested loom::model calls are not supported by this shim"
        );
        install_quiet_hook();
        let body = Arc::new(body);
        let mut prefix: Vec<Branch> = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut report = Report::default();
        loop {
            report.schedules += 1;
            let rt = Arc::new(Rt::new(
                self,
                std::mem::take(&mut prefix),
                std::mem::take(&mut seen),
            ));
            let rt_body = Arc::clone(&rt);
            let b = Arc::clone(&body);
            let handle = std::thread::spawn(move || {
                set_ctx(Arc::clone(&rt_body), 0);
                let out = panic::catch_unwind(AssertUnwindSafe(|| b()));
                rt_body.finish_thread(0, out.err());
                clear_ctx();
            });
            rt.handles
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(handle);
            {
                let mut st = rt.lock_state();
                while !st.all_finished() {
                    st = rt.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            }
            let handles: Vec<_> = rt
                .handles
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .drain(..)
                .collect();
            for h in handles {
                let _ = h.join();
            }
            let (path, failure) = {
                let mut st = rt.lock_state();
                seen = std::mem::take(&mut st.seen);
                report.pruned += st.pruned;
                (std::mem::take(&mut st.path), st.failure.take())
            };
            if let Some(msg) = failure {
                panic!("model check failed on schedule {}: {msg}", report.schedules);
            }
            match advance(path) {
                Some(p) if report.schedules < self.max_schedules => prefix = p,
                _ => return report,
            }
        }
    }
}
