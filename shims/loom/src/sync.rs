//! Model-aware synchronization primitives.
//!
//! [`atomic`] mirrors `std::sync::atomic` for the types the workspace
//! kernels use. Inside a model run each operation is a scheduling point
//! over a per-location store history (so relaxed/acquire loads may observe
//! stale-but-coherent values); outside one it delegates to the plain std
//! atomic it wraps. [`Mutex`] and [`RwLock`] follow the workspace's
//! `parking_lot` shim API (guards without poison `Result`s) and
//! participate in scheduling and happens-before tracking.

use crate::rt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::AtomicUsize;

pub use std::sync::Arc;

/// Model-aware atomics; `Ordering` is re-exported from std.
pub mod atomic {
    use super::rt;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    pub use std::sync::atomic::Ordering;

    /// Memory fence: release fences attach the current clock to later
    /// relaxed stores; acquire fences promote earlier relaxed loads to
    /// synchronizing ones.
    pub fn fence(order: Ordering) {
        rt::fence(order);
    }

    /// Primitive representable in the runtime's u64 store slots.
    pub trait Prim: Copy {
        #[doc(hidden)]
        fn to_u64(self) -> u64;
        #[doc(hidden)]
        fn from_u64(v: u64) -> Self;
    }

    macro_rules! prim_int {
        ($($t:ty),*) => {$(
            impl Prim for $t {
                fn to_u64(self) -> u64 {
                    self as u64
                }
                fn from_u64(v: u64) -> Self {
                    v as $t
                }
            }
        )*};
    }
    prim_int!(u32, u64, usize);

    impl Prim for bool {
        fn to_u64(self) -> u64 {
            u64::from(self)
        }
        fn from_u64(v: u64) -> Self {
            v != 0
        }
    }

    macro_rules! atomic_type {
        ($name:ident, $ty:ty, $std:ty) => {
            /// Model-aware counterpart of the std atomic of the same name.
            #[derive(Debug, Default)]
            pub struct $name {
                plain: $std,
                /// Lazily-registered model location: 0 = unregistered,
                /// otherwise id + 1 (see `rt::lazy_loc`).
                loc: StdAtomicUsize,
            }

            impl $name {
                /// Wraps `v`, registering a store-history location with
                /// the active model run, if any.
                pub fn new(v: $ty) -> Self {
                    let a = $name {
                        plain: <$std>::new(v),
                        loc: StdAtomicUsize::new(0),
                    };
                    a.model_loc();
                    a
                }

                fn model_loc(&self) -> Option<usize> {
                    rt::lazy_loc(&self.loc, || self.plain.load(Ordering::Relaxed).to_u64())
                }

                /// Atomic load; under the model the observed store is a
                /// branch point among coherence-eligible stores.
                pub fn load(&self, order: Ordering) -> $ty {
                    match self.model_loc() {
                        Some(l) => Prim::from_u64(rt::load(l, order)),
                        None => self.plain.load(order),
                    }
                }

                /// Atomic store.
                pub fn store(&self, v: $ty, order: Ordering) {
                    match self.model_loc() {
                        Some(l) => rt::store(l, v.to_u64(), order),
                        None => self.plain.store(v, order),
                    }
                }

                /// Atomic swap; reads the latest store (RMW atomicity).
                pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                    match self.model_loc() {
                        Some(l) => Prim::from_u64(rt::rmw(l, order, |_| v.to_u64())),
                        None => self.plain.swap(v, order),
                    }
                }
            }
        };
    }

    macro_rules! atomic_arith {
        ($name:ident, $ty:ty) => {
            impl $name {
                /// Atomic wrapping add; returns the previous value.
                pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                    match self.model_loc() {
                        Some(l) => Prim::from_u64(rt::rmw(l, order, |old| {
                            <$ty as Prim>::from_u64(old).wrapping_add(v).to_u64()
                        })),
                        None => self.plain.fetch_add(v, order),
                    }
                }

                /// Atomic wrapping subtract; returns the previous value.
                pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                    match self.model_loc() {
                        Some(l) => Prim::from_u64(rt::rmw(l, order, |old| {
                            <$ty as Prim>::from_u64(old).wrapping_sub(v).to_u64()
                        })),
                        None => self.plain.fetch_sub(v, order),
                    }
                }

                /// Atomic maximum; returns the previous value.
                pub fn fetch_max(&self, v: $ty, order: Ordering) -> $ty {
                    match self.model_loc() {
                        Some(l) => Prim::from_u64(rt::rmw(l, order, |old| {
                            <$ty as Prim>::from_u64(old).max(v).to_u64()
                        })),
                        None => self.plain.fetch_max(v, order),
                    }
                }
            }
        };
    }

    atomic_type!(AtomicBool, bool, std::sync::atomic::AtomicBool);
    atomic_type!(AtomicU32, u32, std::sync::atomic::AtomicU32);
    atomic_type!(AtomicU64, u64, std::sync::atomic::AtomicU64);
    atomic_type!(AtomicUsize, usize, std::sync::atomic::AtomicUsize);
    atomic_arith!(AtomicU32, u32);
    atomic_arith!(AtomicU64, u64);
    atomic_arith!(AtomicUsize, usize);
}

// ---------------------------------------------------------------------------
// Locks
// ---------------------------------------------------------------------------

fn recover<T>(r: Result<T, std::sync::TryLockError<T>>) -> Option<T> {
    match r {
        Ok(g) => Some(g),
        Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
        Err(std::sync::TryLockError::WouldBlock) => None,
    }
}

/// Model-aware mutex with the `parking_lot`-style guard API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    /// Lazily-registered model id: 0 = unregistered, otherwise id + 1.
    id: AtomicUsize,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        let m = Mutex {
            inner: std::sync::Mutex::new(value),
            id: AtomicUsize::new(0),
        };
        m.model_id();
        m
    }

    fn model_id(&self) -> Option<usize> {
        rt::lazy_mutex(&self.id)
    }

    /// Acquires the lock, blocking (model: descheduling) until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.model_id() {
            Some(id) => {
                rt::lock_mutex(id);
                let g = recover(self.inner.try_lock())
                    .expect("model granted a mutex that is still held");
                MutexGuard {
                    guard: Some(g),
                    id: Some(id),
                }
            }
            None => MutexGuard {
                guard: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
                id: None,
            },
        }
    }

    /// Non-blocking acquisition.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.model_id() {
            Some(id) => {
                if !rt::try_lock_mutex(id) {
                    return None;
                }
                let g = recover(self.inner.try_lock())
                    .expect("model granted a mutex that is still held");
                Some(MutexGuard {
                    guard: Some(g),
                    id: Some(id),
                })
            }
            None => recover(self.inner.try_lock()).map(|g| MutexGuard {
                guard: Some(g),
                id: None,
            }),
        }
    }
}

/// Guard returned by [`Mutex::lock`]; releases on drop.
pub struct MutexGuard<'a, T> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
    id: Option<usize>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the data lock before telling the scheduler, so the next
        // thread it grants can take the std lock immediately.
        self.guard.take();
        if let Some(id) = self.id {
            rt::unlock_mutex(id);
        }
    }
}

/// Model-aware reader-writer lock with the `parking_lot`-style guard API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
    /// Lazily-registered model id: 0 = unregistered, otherwise id + 1.
    id: AtomicUsize,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        let l = RwLock {
            inner: std::sync::RwLock::new(value),
            id: AtomicUsize::new(0),
        };
        l.model_id();
        l
    }

    fn model_id(&self) -> Option<usize> {
        rt::lazy_rwlock(&self.id)
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.model_id() {
            Some(id) => {
                rt::lock_rw(id, false);
                let g = recover(self.inner.try_read()).expect("model granted a held read lock");
                RwLockReadGuard {
                    guard: Some(g),
                    id: Some(id),
                }
            }
            None => RwLockReadGuard {
                guard: Some(self.inner.read().unwrap_or_else(|e| e.into_inner())),
                id: None,
            },
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.model_id() {
            Some(id) => {
                rt::lock_rw(id, true);
                let g = recover(self.inner.try_write()).expect("model granted a held write lock");
                RwLockWriteGuard {
                    guard: Some(g),
                    id: Some(id),
                }
            }
            None => RwLockWriteGuard {
                guard: Some(self.inner.write().unwrap_or_else(|e| e.into_inner())),
                id: None,
            },
        }
    }
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T> {
    guard: Option<std::sync::RwLockReadGuard<'a, T>>,
    id: Option<usize>,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.guard.take();
        if let Some(id) = self.id {
            rt::unlock_rw(id, false);
        }
    }
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T> {
    guard: Option<std::sync::RwLockWriteGuard<'a, T>>,
    id: Option<usize>,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.guard.take();
        if let Some(id) = self.id {
            rt::unlock_rw(id, true);
        }
    }
}
