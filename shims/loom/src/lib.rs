//! Offline loom-style bounded model checker (API subset).
//!
//! This shim reproduces the parts of the `loom` crate the workspace's
//! concurrency kernels need — [`model`], [`thread::spawn`],
//! [`sync::atomic`], [`sync::Mutex`]/[`sync::RwLock`] and
//! [`cell::UnsafeCell`] — backed by an in-tree explorer instead of the
//! upstream crate, so model checking works without network access.
//!
//! # How it works
//!
//! [`Builder::check`] runs the model body repeatedly, once per *schedule*.
//! Each run executes on real OS threads serialized by a token: before every
//! visible operation (atomic access, fence, lock, `UnsafeCell` access) the
//! running thread asks the scheduler which thread performs the next
//! operation. Each such decision — and each choice of *which store a load
//! observes* under the C11-style weak-memory rules — is a branch point in a
//! depth-first search over all schedules, bounded by a preemption budget
//! and pruned with seen-state hashing.
//!
//! While executing, the runtime maintains:
//!
//! * **vector clocks** per thread, with release/acquire edges from atomics,
//!   fences (release-fence → relaxed-store and relaxed-load →
//!   acquire-fence synchronization), locks and thread spawn/join;
//! * **per-location store histories**, so relaxed and acquire loads may
//!   observe any coherence-eligible store, not just the latest — this is
//!   what lets the checker catch missing-fence bugs (e.g. a seqlock torn
//!   read) that a sequentially-consistent simulator can never produce;
//! * **FastTrack-style access epochs** per [`cell::UnsafeCell`], reporting
//!   a data race whenever two threads touch a cell without a
//!   happens-before edge and at least one access is a write.
//!
//! A detected race, deadlock, or a panic escaping the model body fails the
//! whole check with the offending schedule's failure message.
//!
//! # Differences from upstream loom
//!
//! * `sync::Mutex::lock` and `sync::RwLock::{read,write}` return guards
//!   directly (`parking_lot` style, no poison `Result`), matching the
//!   workspace's lock shims.
//! * [`cell::UnsafeCell`] adds `with_racy`, an intentionally unchecked read
//!   for seqlock-style readers whose races are resolved by validation.
//! * Outside a model run every primitive degrades to its plain `std`
//!   behaviour (passthrough), so crates compiled with their `model` feature
//!   still pass their ordinary test suites.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod cell;
mod rt;
pub mod sync;
pub mod thread;

pub use rt::{Builder, Report};

/// Runs `body` under the default [`Builder`], panicking on any failure.
///
/// Mirrors `loom::model`. Use [`Builder::check`] to tune bounds or to
/// inspect how many schedules were explored.
pub fn model<F>(body: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(body);
}

/// Whether a caught panic payload is the checker's internal
/// schedule-abort sentinel.
///
/// Model code that uses `std::panic::catch_unwind` around an *expected*
/// panic (e.g. asserting a contract violation fires) must re-raise the
/// payload when this returns `true`, or aborted schedules would be
/// swallowed:
///
/// ```ignore
/// if let Err(e) = std::panic::catch_unwind(|| enter()) {
///     if loom::is_abort(&e) {
///         std::panic::resume_unwind(e);
///     }
/// }
/// ```
pub fn is_abort(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.downcast_ref::<rt::AbortSchedule>().is_some()
}

/// Whether the current thread is executing inside a model run.
///
/// Lets instrumented code keep model-only assertions (which rely on the
/// explorer's deterministic memory semantics) out of passthrough
/// executions of the same `--features model` build.
pub fn is_modeling() -> bool {
    rt::in_model()
}
