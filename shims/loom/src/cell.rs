//! Race-checked interior mutability.
//!
//! Inside a model run every access is a scheduling point, and reads and
//! writes are checked against FastTrack-style access epochs: two accesses
//! from different threads without a happens-before edge, at least one of
//! them a write, fail the schedule as a data race. Outside a model run the
//! cell degrades to a plain `std::cell::UnsafeCell`.

use crate::rt;
use std::sync::atomic::AtomicUsize;

/// Model-checked counterpart of `std::cell::UnsafeCell`.
///
/// Access is closure-scoped like upstream loom: [`UnsafeCell::with`] for
/// reads, [`UnsafeCell::with_mut`] for writes, plus [`UnsafeCell::with_racy`]
/// for deliberately unsynchronized reads that a protocol validates after
/// the fact (seqlock readers).
#[derive(Debug)]
pub struct UnsafeCell<T: ?Sized> {
    /// Lazily-registered model id: 0 = unregistered, otherwise id + 1
    /// (see `rt::lazy_cell`).
    id: AtomicUsize,
    inner: std::cell::UnsafeCell<T>,
}

// SAFETY: mirrors upstream loom (and the std atomics): the cell is shared
// across model threads on purpose, and every access path (`with`,
// `with_mut`, `with_racy`) is either race-checked by the runtime or
// explicitly marked racy-by-design and validated by the caller's protocol.
unsafe impl<T: Send + ?Sized> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    /// Wraps `value`. Registers the cell with the active model run, if
    /// any.
    pub fn new(value: T) -> Self {
        let cell = UnsafeCell {
            id: AtomicUsize::new(0),
            inner: std::cell::UnsafeCell::new(value),
        };
        cell.model_id();
        cell
    }

    /// Consumes the cell and returns the wrapped value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    fn model_id(&self) -> Option<usize> {
        rt::lazy_cell(&self.id)
    }

    /// Immutable access: records a read and checks it against concurrent
    /// writes.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        if let Some(id) = self.model_id() {
            rt::cell_access(id, false);
        }
        f(self.inner.get())
    }

    /// Mutable access: records a write and checks it against every
    /// concurrent access.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        if let Some(id) = self.model_id() {
            rt::cell_access(id, true);
        }
        f(self.inner.get())
    }

    /// Unchecked read for racy-by-design protocols (a seqlock reader's
    /// speculative copy): still a scheduling point, but records no access,
    /// so the caller's validation step — not the race detector — is what
    /// rejects torn results.
    pub fn with_racy<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        if self.model_id().is_some() {
            rt::yield_point();
        }
        f(self.inner.get())
    }
}
