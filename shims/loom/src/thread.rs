//! Model-aware threads: `spawn`/`join` with spawn and join
//! happens-before edges inside a model run, plain `std::thread` outside.

use crate::rt;
use std::sync::{Arc, Mutex};

enum Inner<T> {
    Model {
        tid: usize,
        result: Arc<Mutex<Option<T>>>,
    },
    Real(std::thread::JoinHandle<T>),
}

/// Handle to a spawned thread; mirrors `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// Inside a model run a panicking child fails the whole schedule
    /// before `join` returns, so the `Err` variant only surfaces in
    /// passthrough mode.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Model { tid, result } => {
                rt::join_model(tid);
                let v = result
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("joined model thread left no result");
                Ok(v)
            }
            Inner::Real(h) => h.join(),
        }
    }
}

/// Spawns a thread. Inside a model run the child becomes a scheduled
/// model thread inheriting the parent's vector clock; outside it is a
/// plain OS thread.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if rt::in_model() {
        let result = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&result);
        let tid = rt::spawn_model(move || {
            let v = f();
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
        });
        JoinHandle {
            inner: Inner::Model { tid, result },
        }
    } else {
        JoinHandle {
            inner: Inner::Real(std::thread::spawn(f)),
        }
    }
}

/// Scheduling point with no memory effect (`std::thread::yield_now`
/// analogue): gives the explorer a place to switch threads.
pub fn yield_now() {
    if rt::in_model() {
        rt::yield_point();
    } else {
        std::thread::yield_now();
    }
}
