//! Self-checks for the model explorer: it must find classic concurrency
//! bugs (races, missing fences) and must not flag correct protocols.

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use loom::sync::{Arc, Mutex};

fn fails(body: impl Fn() + Send + Sync + 'static) -> String {
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        loom::model(body);
    }));
    match r {
        Ok(()) => panic!("model unexpectedly passed"),
        Err(e) => e
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default(),
    }
}

#[test]
fn unsynchronized_writes_race() {
    let msg = fails(|| {
        let cell = Arc::new(UnsafeCell::new(0u32));
        let c2 = Arc::clone(&cell);
        let t = loom::thread::spawn(move || {
            c2.with_mut(|p| unsafe { *p += 1 });
        });
        cell.with_mut(|p| unsafe { *p += 1 });
        t.join().unwrap();
    });
    assert!(msg.contains("data race"), "got: {msg}");
}

#[test]
fn mutex_protected_writes_do_not_race() {
    let report = loom::Builder::default().check(|| {
        let cell = Arc::new((Mutex::new(()), UnsafeCell::new(0u32)));
        let c2 = Arc::clone(&cell);
        let t = loom::thread::spawn(move || {
            let _g = c2.0.lock();
            c2.1.with_mut(|p| unsafe { *p += 1 });
        });
        {
            let _g = cell.0.lock();
            cell.1.with_mut(|p| unsafe { *p += 1 });
        }
        t.join().unwrap();
        let _g = cell.0.lock();
        cell.1.with(|p| assert_eq!(unsafe { *p }, 2));
    });
    assert!(
        report.schedules >= 2,
        "explored {} schedules",
        report.schedules
    );
}

#[test]
fn release_acquire_publishes() {
    loom::model(|| {
        let st = Arc::new((AtomicBool::new(false), UnsafeCell::new(0u32)));
        let s2 = Arc::clone(&st);
        let t = loom::thread::spawn(move || {
            s2.1.with_mut(|p| unsafe { *p = 7 });
            s2.0.store(true, Ordering::Release);
        });
        if st.0.load(Ordering::Acquire) {
            st.1.with(|p| assert_eq!(unsafe { *p }, 7));
        }
        t.join().unwrap();
    });
}

#[test]
fn relaxed_flag_is_not_a_publication() {
    // Same shape as above but with a relaxed flag: the data read races the
    // write because no happens-before edge exists.
    let msg = fails(|| {
        let st = Arc::new((AtomicBool::new(false), UnsafeCell::new(0u32)));
        let s2 = Arc::clone(&st);
        let t = loom::thread::spawn(move || {
            s2.1.with_mut(|p| unsafe { *p = 7 });
            s2.0.store(true, Ordering::Relaxed);
        });
        if st.0.load(Ordering::Relaxed) {
            st.1.with(|p| {
                let _ = unsafe { *p };
            });
        }
        t.join().unwrap();
    });
    assert!(msg.contains("data race"), "got: {msg}");
}

#[test]
fn relaxed_load_explores_stale_and_fresh_stores() {
    // Store-history speculation: a relaxed load racing two relaxed stores
    // must be able to observe every coherent value (0, 1 and 2 across the
    // schedule set), and a load *after* join must observe only the final
    // one (the join edge floors the history).
    let seen = Arc::new(std::sync::Mutex::new(std::collections::BTreeSet::new()));
    let seen2 = Arc::clone(&seen);
    loom::Builder::default().check(move || {
        let flag = Arc::new(AtomicU32::new(0));
        let f2 = Arc::clone(&flag);
        let t = loom::thread::spawn(move || {
            f2.store(1, Ordering::Relaxed);
            f2.store(2, Ordering::Relaxed);
        });
        let racy = flag.load(Ordering::Relaxed);
        t.join().unwrap();
        let settled = flag.load(Ordering::Relaxed);
        assert_eq!(settled, 2, "post-join load must see the final store");
        seen2.lock().unwrap_or_else(|e| e.into_inner()).insert(racy);
    });
    let vals: Vec<u32> = seen
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .copied()
        .collect();
    assert_eq!(
        vals,
        vec![0, 1, 2],
        "racy load must explore all coherent values"
    );
}

#[test]
fn deadlock_is_reported() {
    let msg = fails(|| {
        let locks = Arc::new((Mutex::new(()), Mutex::new(())));
        let l2 = Arc::clone(&locks);
        let t = loom::thread::spawn(move || {
            let _a = l2.0.lock();
            let _b = l2.1.lock();
        });
        let _b = locks.1.lock();
        let _a = locks.0.lock();
        drop(_a);
        drop(_b);
        t.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "got: {msg}");
}

#[test]
fn panic_in_body_fails_check() {
    let msg = fails(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let t = loom::thread::spawn(move || {
            f2.store(true, Ordering::Release);
        });
        t.join().unwrap();
        assert!(flag.load(Ordering::Acquire), "flag must be set after join");
        panic!("intentional failure");
    });
    assert!(msg.contains("intentional failure"), "got: {msg}");
}

#[test]
fn passthrough_outside_model() {
    // No model context: everything behaves like plain std.
    let a = AtomicU32::new(1);
    assert_eq!(a.fetch_add(2, Ordering::Relaxed), 1);
    assert_eq!(a.load(Ordering::Acquire), 3);
    let m = Mutex::new(5u32);
    *m.lock() += 1;
    assert_eq!(*m.lock(), 6);
    let c = UnsafeCell::new(9u32);
    c.with(|p| assert_eq!(unsafe { *p }, 9));
}

#[test]
fn rwlock_readers_and_writer_serialize() {
    let b = loom::Builder {
        max_schedules: 2_000,
        ..loom::Builder::default()
    };
    b.check(|| {
        let lock = loom::sync::Arc::new(loom::sync::RwLock::new(0u32));
        let l2 = loom::sync::Arc::clone(&lock);
        let t = loom::thread::spawn(move || {
            *l2.write() += 1;
            *l2.read()
        });
        let seen = *lock.read();
        assert!(seen <= 1);
        let from_writer = t.join().unwrap();
        assert!(from_writer >= 1);
        assert_eq!(*lock.read(), 1);
    });
}
