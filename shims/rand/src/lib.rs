//! Offline shim for `rand`.
//!
//! Provides the subset of the rand 0.8 API used by this workspace
//! (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_ratio, gen_bool}`) backed by xoshiro256++ with SplitMix64 seeding.
//! Deterministic for a given seed, which is all the simulation needs.

#![deny(unsafe_op_in_unsafe_fn)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, blanket-implemented for every RngCore.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % denominator as u64) < numerator as u64
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p));
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded from a u64 via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut rng = StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            };
            // Warm-up: xoshiro's early outputs correlate with the SplitMix64
            // fill for small seeds; discard a few so short draw sequences
            // right after seeding are well mixed.
            for _ in 0..16 {
                let _ = rng.next_u64();
            }
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn ratio_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(9, 10)).count();
        assert!((8_500..=9_500).contains(&hits), "hits = {hits}");
    }
}
