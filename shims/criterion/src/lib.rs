//! Offline shim for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use
//! (`Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, the `criterion_group!`/`criterion_main!`
//! macros) with a plain wall-clock harness: calibrate an iteration count to
//! a small time budget, take several samples, and report the median
//! nanoseconds per iteration to stdout. No plots, no statistics files —
//! just honest numbers so benches still run offline.

#![deny(unsafe_op_in_unsafe_fn)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for one benchmark within a group: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        let function = function.into();
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timing context handed to the bench closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the calibrated number of iterations, timing the whole
    /// batch. The return value is black-boxed to keep the work alive.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// One measured benchmark result.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub group: String,
    pub label: String,
    pub median_ns_per_iter: f64,
    pub samples: usize,
    pub iters_per_sample: u64,
}

/// Top-level driver. Collects measurements and prints them as it goes.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 12,
            measurement_time: Duration::from_millis(250),
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
            measurement_time: None,
        }
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    /// All measurements recorded so far (used by JSON-emitting harnesses).
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = Some(n);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(id.label.clone(), &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.label.clone(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, label: String, f: &mut dyn FnMut(&mut Bencher)) {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let budget = self
            .measurement_time
            .unwrap_or(self.criterion.measurement_time);

        // Calibrate: grow the iteration count until one batch costs at
        // least 1/20 of the per-sample budget (floor 1 iteration).
        let per_sample = budget / samples.max(1) as u32;
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= per_sample / 20 || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(2);
        }

        let mut per_iter_ns: Vec<f64> = (0..samples)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[per_iter_ns.len() / 2];

        println!(
            "  {name}/{label:<32} {median:>12.1} ns/iter ({samples} samples x {iters} iters)",
            name = self.name,
        );
        self.criterion.measurements.push(Measurement {
            group: self.name.clone(),
            label,
            median_ns_per_iter: median,
            samples,
            iters_per_sample: iters,
        });
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3).measurement_time(Duration::from_millis(20));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
        assert_eq!(c.measurements().len(), 1);
        assert!(c.measurements()[0].median_ns_per_iter > 0.0);
    }
}
