//! Offline shim for `parking_lot`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small subset of the `parking_lot` API the workspace uses, implemented
//! on top of `std::sync`. Semantics match parking_lot where it matters here:
//! `lock()` never returns a poison error (a poisoned std lock is recovered
//! by taking the inner value, mirroring parking_lot's poison-free design).

#![deny(unsafe_op_in_unsafe_fn)]

use std::fmt;

/// Mutex with parking_lot's poison-free `lock()` signature.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// RwLock with parking_lot's poison-free API.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
