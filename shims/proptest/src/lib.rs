//! Offline shim for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the proptest API this workspace uses: `Strategy` with
//! `prop_map`/`boxed`, `Just`, `any`, integer-range strategies, tuple
//! strategies, `prop::collection::vec`, `prop::bool::ANY`, `prop_oneof!`,
//! and the `proptest!` test macro with `ProptestConfig::with_cases`.
//!
//! Cases are generated deterministically: the RNG seed is derived from the
//! test name and case index, so every run explores the same inputs and a
//! failure message names the case that reproduces it. No shrinking — the
//! failing input is printed verbatim instead.

#![deny(unsafe_op_in_unsafe_fn)]

use std::fmt::Debug;
use std::marker::PhantomData;
use std::rc::Rc;

pub mod test_runner {
    /// SplitMix64-based deterministic generator for test case inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x5851_f42d_4c95_7f2d,
            }
        }

        /// Seed derived from the test name and case index, so each test
        /// explores a stable, independent input sequence.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng::new(h.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use super::*;

    /// A generator of test-case values. Unlike real proptest there is no
    /// value tree or shrinking; `new_value` directly produces a value.
    pub trait Strategy {
        type Value: Debug;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.new_value(rng)))
        }
    }

    /// Type-erased strategy, used by `prop_oneof!` to mix branch types.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Result of [`Strategy::prop_filter`]. Rejection-samples with a
    /// bounded retry count (generators here are cheap and dense).
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.new_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted retries: {}", self.whence);
        }
    }

    /// Uniform choice between boxed branches (built by `prop_oneof!`).
    pub struct Union<T> {
        branches: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!branches.is_empty(), "prop_oneof! needs >= 1 branch");
            Union { branches }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.branches.len() as u64) as usize;
            self.branches[idx].new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + offset) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use super::*;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized + Debug {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over the full domain of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Length bound for collection strategies (`0..120`, `1..=6`, `5`, ...).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing a `Vec` of element-strategy values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniform boolean strategy (`prop::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Uniform choice among strategies that share a `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($branch:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($branch)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Guard printed on panic so a failing case is reproducible: it names the
/// test, the case index, and the generated input.
#[doc(hidden)]
pub struct CaseGuard<'a> {
    pub test_name: &'a str,
    pub case: u64,
    pub input: String,
    pub armed: bool,
}

impl Drop for CaseGuard<'_> {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest shim: test `{}` failed at case {} with input: {}",
                self.test_name, self.case, self.input
            );
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategy = ($($strat,)+);
                for case in 0..config.cases as u64 {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    let values = $crate::strategy::Strategy::new_value(&strategy, &mut rng);
                    let mut guard = $crate::CaseGuard {
                        test_name: stringify!($name),
                        case,
                        input: format!("{:?}", values),
                        armed: true,
                    };
                    let ($($arg,)+) = values;
                    $body
                    guard.armed = false;
                    let _ = &guard;
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Push(i64),
        Pop,
    }

    fn ops() -> impl Strategy<Value = Vec<Op>> {
        prop::collection::vec(
            prop_oneof![(0..100i64).prop_map(Op::Push), Just(Op::Pop)],
            0..40,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Generated sequences respect the declared size bound.
        #[test]
        fn vec_respects_bounds(v in ops()) {
            prop_assert!(v.len() < 40);
        }

        #[test]
        fn tuples_and_ranges(pair in (0..10u32, any::<bool>())) {
            prop_assert!(pair.0 < 10);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let strat = ops();
        let mut a = TestRng::for_case("determinism", 3);
        let mut b = TestRng::for_case("determinism", 3);
        assert_eq!(strat.new_value(&mut a), strat.new_value(&mut b));
    }
}
