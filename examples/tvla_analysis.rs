//! The paper's §2.1 walkthrough on the TVLA-like workload: profile, read
//! the collection share of live data (Fig. 2), inspect the top contexts
//! (Fig. 3), apply the suggestions and re-run.
//!
//! Run with: `cargo run --release --example tvla_analysis`

use chameleon_core::Chameleon;
use chameleon_workloads::Tvla;

fn main() {
    let workload = Tvla::default();
    let chameleon = Chameleon::new();

    println!("== profiling TVLA ==");
    let report = chameleon.profile(&workload);
    let peak = report
        .series
        .iter()
        .max_by(|a, b| a.live_pct.total_cmp(&b.live_pct))
        .expect("GC cycles recorded");
    println!(
        "peak collection share of live data: {:.1}% live / {:.1}% used / {:.1}% core",
        peak.live_pct, peak.used_pct, peak.core_pct
    );

    println!("\n== top allocation contexts ==");
    print!("{}", report.format_top_contexts(4));

    println!("\n== suggestions ==");
    let suggestions = chameleon.engine().evaluate(&report);
    for (i, s) in suggestions.iter().enumerate() {
        println!("{}: {}", i + 1, s);
    }

    println!("\n== applying the top 5 and re-running (the paper's §2.1 step) ==");
    let result = chameleon.optimize(&workload);
    println!(
        "minimal heap: {} B -> {} B ({:.1}% reduction; paper: ~50%)",
        result.min_heap_before,
        result.min_heap_after,
        result.space_improvement().pct()
    );
    println!(
        "running time at original min heap: {:.2}x faster (paper: 2.5x)",
        result.time_improvement().factor()
    );
}
