//! Fully-automatic online mode (§3.3.2/§5.4): Chameleon re-evaluates its
//! rules *during* the run and later allocations at the same context come
//! out with the better implementation — no second run needed.
//!
//! Run with: `cargo run --release --example online_adaptation`

use chameleon_collections::CollectionFactory;
use chameleon_core::{Chameleon, OnlineConfig};

fn main() {
    // Waves of small maps from one hot allocation site.
    let program = ("waves", |f: &CollectionFactory| {
        let _g = f.enter("waves.Handler.onEvent:77");
        for wave in 0..400i64 {
            let mut m = f.new_map::<i64, i64>(None);
            for k in 0..4 {
                m.put(k, wave);
            }
            let _ = m.get(&0);
        }
    });

    let chameleon = Chameleon::new();
    let result = chameleon
        .optimize_online(
            &program,
            &OnlineConfig {
                eval_every_deaths: 64,
                ..OnlineConfig::default()
            },
        )
        .expect("default config enables profiling");

    println!(
        "rule evaluations mid-run: {}, policy installs: {}",
        result.evaluations, result.replacements
    );
    let ctx = &result.report.contexts[0];
    println!("context {}:", ctx.label);
    for (impl_name, count) in &ctx.trace.impl_counts {
        println!("  {count:>4} instance(s) served by {impl_name}");
    }
    println!(
        "\n(the early instances ran on HashMap; once the engine saw enough deaths,\n\
         the same site started producing ArrayMaps — replacement happened online)"
    );
    println!(
        "\nconverged policy has {} portable update(s), re-appliable to any fresh run",
        result.converged_policy.len()
    );
}
