//! Diagnosing a heap spike with the collection-aware GC (the paper's bloat
//! case study, §5.3/Fig. 8): find the cycle where collections spike, see
//! which class dominates, and which context to fix.
//!
//! Run with: `cargo run --release --example bloat_spike`

use chameleon_core::{Chameleon, Env, EnvConfig};
use chameleon_workloads::Bloat;

fn main() {
    let workload = Bloat::default();

    // Profile with GC pressure so the collector samples the whole run.
    let env = Env::new(&EnvConfig {
        gc_interval_bytes: Some(64 * 1024),
        ..EnvConfig::default()
    });
    env.run(&workload);
    let report = env.report();

    // 1. Find the spike.
    let spike = report
        .series
        .iter()
        .max_by_key(|p| p.heap_live)
        .expect("cycles recorded");
    println!(
        "spike at GC#{}: {} B live, {:.1}% of it collections",
        spike.cycle, spike.heap_live, spike.live_pct
    );

    // 2. What type dominates the spike? (The paper: LinkedList$Entry
    //    sentinels of empty lists, ~25% of the heap.)
    let cycles = env.heap.cycles();
    let spike_cycle = cycles
        .iter()
        .find(|c| c.cycle == spike.cycle)
        .expect("spike cycle");
    let mut types = spike_cycle.type_distribution.clone();
    types.sort_by_key(|(_, b, _)| std::cmp::Reverse(*b));
    println!("\ntop types at the spike:");
    for (class, bytes, n) in types.iter().take(5) {
        println!(
            "  {:<22} {:>8} B in {:>6} objects ({:.1}%)",
            env.heap.class_name(*class),
            bytes,
            n,
            100.0 * *bytes as f64 / spike_cycle.live_bytes as f64
        );
    }

    // 3. Which allocation context is responsible, and what to do about it.
    println!("\ntop contexts by potential:");
    print!("{}", report.format_top_contexts(3));

    let chameleon = Chameleon::new();
    let suggestions = chameleon.engine().evaluate(&report);
    println!("\nsuggestions:");
    for s in suggestions.iter().take(4) {
        println!("  {s}");
    }

    // 4. The automatic fix.
    let result = chameleon.optimize(&workload);
    println!(
        "\nautomatic policy: min heap {} B -> {} B ({:.1}% saving)",
        result.min_heap_before,
        result.min_heap_after,
        result.space_improvement().pct()
    );
    println!(
        "(the paper's full 56% additionally required the manual lazy-allocation\n\
         rewrite — see `Bloat {{ manual_lazy: true, .. }}` and fig6_min_heap)"
    );
}
