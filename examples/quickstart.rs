//! Quickstart: profile a program's collection usage and get suggestions.
//!
//! Run with: `cargo run --example quickstart`

use chameleon_collections::CollectionFactory;
use chameleon_core::Chameleon;

fn main() {
    // A "program": allocates all collections through a factory so Chameleon
    // can capture allocation contexts. This one keeps many sparse HashMaps
    // alive — the classic bloat pattern.
    let program = ("quickstart", |f: &CollectionFactory| {
        let _frame = f.enter("app.Cache.load:42");
        let mut cache = Vec::new();
        for id in 0..1500i64 {
            let mut m = f.new_map::<i64, i64>(None); // default HashMap
            m.put(id, id * 10);
            m.put(id + 1, id * 10 + 1);
            let _ = m.get(&id);
            cache.push(m);
        }
    });

    // 1. Profile the run.
    let chameleon = Chameleon::new();
    let report = chameleon.profile(&program);
    println!("profiled {} allocation context(s)\n", report.contexts.len());
    print!("{}", report.format_top_contexts(3));

    // 2. Ask the rule engine for suggestions.
    let suggestions = chameleon.engine().evaluate(&report);
    println!("\nsuggestions:");
    for s in &suggestions {
        println!("  {s}");
    }

    // 3. Run the whole before/after methodology (minimal heap + time).
    let result = chameleon.optimize(&program);
    println!(
        "\nminimal heap: {} B -> {} B ({:.1}% saving)",
        result.min_heap_before,
        result.min_heap_after,
        result.space_improvement().pct()
    );
    println!(
        "running time: {} -> {} simulated units ({:.1}% faster)",
        result.time_before.sim_time,
        result.time_after.sim_time,
        result.time_improvement().pct()
    );
}
