//! Writing custom selection rules in the Fig. 4 language.
//!
//! Run with: `cargo run --example rule_dsl`

use chameleon_collections::CollectionFactory;
use chameleon_core::Chameleon;
use chameleon_rules::RuleEngine;

fn main() {
    // Start from an empty engine and write our own rules. Conditions range
    // over Table 1 metrics: #op counts, @op deviations, size/maxSize/
    // initialCapacity, and heap data (totLive, totUsed, potential...).
    let mut engine = RuleEngine::new();
    engine.set_param("HOT", 25.0);
    engine
        .add_rules(
            r#"
            // Maps that stay tiny become array maps sized exactly right.
            HashMap : maxSize < 8 && maxSize > 0 && @maxSize < 1
                -> ArrayMap(maxSize)
                "Space: tiny stable map";

            // Anything read far more than written deserves insertion order
            // + O(1) contains.
            ArrayList : #contains > HOT && maxSize > 10
                -> LinkedHashSet
                "Time: membership-heavy list";

            // Collections that only ever get copied are temporaries.
            Collection : #copied > 0 && #allOps == #copied + #addAll + #add
                -> Eliminate
                "Space/Time: copy-only temporary";
            "#,
        )
        .expect("rules parse and validate");

    // A malformed rule is rejected with a spanned diagnostic:
    let err = RuleEngine::new()
        .add_rules("HashMap : maxSize <<< 3 -> ArrayMap")
        .expect_err("syntax error");
    println!("diagnostics look like:\n{err}\n");

    // Evaluate the custom rules over a profiled program.
    let program = ("dsl-demo", |f: &CollectionFactory| {
        let _g = f.enter("demo.Site:1");
        let mut keep = Vec::new();
        for i in 0..50i64 {
            let mut m = f.new_map::<i64, i64>(None);
            m.put(i, i);
            m.put(i + 1, i);
            keep.push(m);
        }
    });
    let chameleon = Chameleon::new().with_engine(engine);
    let report = chameleon.profile(&program);
    for s in chameleon.engine().evaluate(&report) {
        println!("fired: {s}");
        println!("  by rule: {}", s.rule_text);
    }
}
