//! # chameleon-repro
//!
//! Facade crate for the reproduction of *Chameleon: Adaptive Selection of
//! Collections* (Shacham, Vechev & Yahav, PLDI 2009). Re-exports the
//! workspace crates under one roof:
//!
//! * [`heap`] — simulated managed heap + collection-aware GC
//!   ([`chameleon_heap`]);
//! * [`collections`] — swappable, instrumented collection library
//!   ([`chameleon_collections`]);
//! * [`profiler`] — per-context trace/heap statistics
//!   ([`chameleon_profiler`]);
//! * [`rules`] — the selection-rule language and engine
//!   ([`chameleon_rules`]);
//! * [`core`] — the profile → suggest → apply → re-run orchestrator
//!   ([`chameleon_core`]);
//! * [`workloads`] — the paper's benchmark simulacra
//!   ([`chameleon_workloads`]).
//!
//! See `examples/quickstart.rs` for the five-minute tour and the
//! `chameleon-bench` crate for every table/figure harness.

#![deny(unsafe_op_in_unsafe_fn)]

pub use chameleon_collections as collections;
pub use chameleon_core as core;
pub use chameleon_heap as heap;
pub use chameleon_profiler as profiler;
pub use chameleon_rules as rules;
pub use chameleon_telemetry as telemetry;
pub use chameleon_workloads as workloads;
